package runtime

import (
	"context"
	"fmt"
	"sort"
	"time"

	"skadi/internal/idgen"
	"skadi/internal/migrate"
	"skadi/internal/scheduler"
	"skadi/internal/task"
	"skadi/internal/trace"
)

// Per-node gauge families refreshed by SampleNodeGauges. The label is the
// node's short ID.
const (
	// GaugeResidentBytes is each node's local object-store usage.
	GaugeResidentBytes = "node_resident_bytes"
	// GaugeQueueDepth is each node's in-flight task count.
	GaugeQueueDepth = "node_queue_depth"
	// GaugeActorCount is the number of actors pinned to each node.
	GaugeActorCount = "node_actor_count"
)

// MigrateActor live-migrates an actor to an explicit destination node,
// pausing dispatch for it (no submission is lost) and updating its pin.
func (rt *Runtime) MigrateActor(ctx context.Context, actor idgen.ActorID, to idgen.NodeID) (migrate.ActorReport, error) {
	// The placement read, the gate check, and the gate install must share
	// one critical section: a concurrent MigrateActor completing in between
	// would leave the placement stale, and the freeze would then target a
	// raylet the actor no longer lives on (phantom state, bogus tombstone).
	rt.mu.Lock()
	p, known := rt.actorLoc[actor]
	if !known {
		rt.mu.Unlock()
		return migrate.ActorReport{}, fmt.Errorf("runtime: unknown actor %s", actor.Short())
	}
	if p.node == to {
		rt.mu.Unlock()
		return migrate.ActorReport{Actor: actor, From: p.node, To: to}, nil
	}
	if _, ok := rt.raylets[to]; !ok {
		rt.mu.Unlock()
		return migrate.ActorReport{}, fmt.Errorf("runtime: no raylet on destination %s", to.Short())
	}
	// Raise the dispatch gate: tasks submitted during the migration park
	// instead of racing the cutover.
	if _, inFlight := rt.actorGate[actor]; inFlight {
		rt.mu.Unlock()
		return migrate.ActorReport{}, fmt.Errorf("runtime: actor %s is already migrating", actor.Short())
	}
	gate := make(chan struct{})
	rt.actorGate[actor] = gate
	rt.mu.Unlock()
	defer func() {
		rt.mu.Lock()
		delete(rt.actorGate, actor)
		rt.mu.Unlock()
		close(gate)
	}()

	if _, traced := trace.FromContext(ctx); !traced {
		var sp *trace.Span
		ctx, sp = rt.tracer.StartRoot(ctx, idgen.Next(), trace.KindMigrateActor, rt.driver)
		defer sp.End()
	}
	rep, err := rt.migrator.MigrateActor(ctx, actor, p.node, to)
	if err != nil {
		return rep, err
	}
	rt.mu.Lock()
	rt.actorLoc[actor] = actorPlacement{node: to, backend: p.backend}
	rt.mu.Unlock()
	return rep, nil
}

// MigrateObject moves one resident object's copy between nodes via the
// live-migration path (copy, ownership location move, tombstone-forward).
func (rt *Runtime) MigrateObject(ctx context.Context, id idgen.ObjectID, from, to idgen.NodeID) (migrate.ObjectReport, error) {
	if _, traced := trace.FromContext(ctx); !traced {
		var sp *trace.Span
		ctx, sp = rt.tracer.StartRoot(ctx, idgen.Next(), trace.KindMigrateObject, rt.driver)
		defer sp.End()
	}
	return rt.migrator.MigrateObject(ctx, id, from, to)
}

// DecommissionReport summarizes one node drain.
type DecommissionReport struct {
	Node         idgen.NodeID
	ActorsMoved  int
	ObjectsMoved int
	// BytesMoved is the total payload that crossed the fabric during the
	// drain (actor state + object copies).
	BytesMoved int64
	// StaleDropped counts ownership entries that still claimed the node
	// but had no live copy to move (evicted or untracked data).
	StaleDropped int
	Dur          time.Duration
}

// Decommission gracefully removes a node: it is withdrawn from scheduling,
// its actors live-migrate away (no failed tasks), in-flight work drains,
// resident objects are copied off behind tombstone-forwards, and only then
// is the raylet actually stopped and the node removed from the cluster.
// This is the elastic shrink path of a disaggregated pool — contrast with
// KillNode, which drops state and leans on lineage or cache recovery.
//
// EC shards and DSM-spilled data are not migrated: shards are redundant by
// construction and DSM survives the node. On any error the node is left
// cordoned-but-alive: withdrawn from scheduling, raylet still serving its
// remaining data, never half-dead. It is not returned to service — new
// work must not land on a node being evacuated; retry Decommission to
// finish the drain (already-moved actors/objects are not moved twice).
func (rt *Runtime) Decommission(ctx context.Context, node idgen.NodeID) (DecommissionReport, error) {
	start := time.Now()
	rep := DecommissionReport{Node: node}
	if node == rt.driver {
		return rep, fmt.Errorf("runtime: cannot decommission the head node")
	}
	rt.mu.Lock()
	rl, ok := rt.raylets[node]
	rt.mu.Unlock()
	if !ok {
		return rep, fmt.Errorf("runtime: no raylet on node %s", node.Short())
	}

	ctx, root := rt.tracer.StartRoot(ctx, idgen.Next(), trace.KindDecommission, rt.driver)
	root.SetAttr("node", node.Short())
	defer root.End()

	// 1. Withdraw from scheduling, keeping inflight accounting alive
	// (RemoveNode would destroy it; we still need to watch the queue
	// drain).
	rt.Sched.SetAlive(node, false)

	// 2. Live-migrate every actor pinned here. Destinations come from the
	// scheduler, which no longer offers this node.
	rt.mu.Lock()
	var actors []idgen.ActorID
	for a, p := range rt.actorLoc {
		if p.node == node {
			actors = append(actors, a)
		}
	}
	sort.Slice(actors, func(i, j int) bool { return actors[i].Less(actors[j]) })
	rt.mu.Unlock()
	for _, actor := range actors {
		rt.mu.Lock()
		backend := rt.actorLoc[actor].backend
		rt.mu.Unlock()
		probe := task.NewSpec(rt.job, "", nil, 0)
		probe.Backend = backend
		dest, err := rt.Sched.Pick(probe)
		if err != nil {
			return rep, fmt.Errorf("runtime: no destination for actor %s (%s): %w", actor.Short(), backend, err)
		}
		rt.Sched.Finished(dest)
		arep, err := rt.MigrateActor(ctx, actor, dest)
		if err != nil {
			return rep, fmt.Errorf("runtime: draining actor %s: %w", actor.Short(), err)
		}
		rep.ActorsMoved++
		rep.BytesMoved += arep.Bytes
	}

	// 3. Wait out in-flight tasks (non-actor tasks already placed here,
	// plus actor tasks bouncing through their redirects).
	for rt.Sched.Inflight(node) != 0 {
		select {
		case <-ctx.Done():
			return rep, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}

	// 4. Drain resident objects, round-robin across the remaining fleet.
	targets := rt.drainTargets(node)
	if store := rt.Layer.Store(node); store != nil && len(targets) > 0 {
		ids := store.List()
		sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
		i := 0
		for _, id := range ids {
			if _, err := rt.Head.Table.Get(id); err != nil {
				continue // EC shard or untracked blob; redundancy covers it
			}
			orep, err := rt.migrator.MigrateObject(ctx, id, node, targets[i%len(targets)])
			i++
			if err != nil {
				return rep, fmt.Errorf("runtime: draining object %s: %w", id.Short(), err)
			}
			if orep.Moved {
				rep.ObjectsMoved++
				rep.BytesMoved += orep.Bytes
			}
		}
	}

	// 5. The node is empty: stop the raylet for real and remove the node.
	// Ownership entries still claiming the node (evicted copies, EC shards)
	// are scrubbed; anything that thereby loses its last copy was already
	// dead weight and is reported, not recovered.
	rl.Stop()
	rt.Cluster.Kill(node)
	rt.Sched.RemoveNode(node)
	// Decentralized: a drained node leaves gossip and the shard ring for
	// good — Leave, unlike a death verdict, cannot be refuted by a rejoin.
	rt.noteNodeLeft(node)
	rt.Layer.DropNode(node)
	rep.StaleDropped = len(rt.Head.Table.RemoveNodeLocations(node))
	rt.mu.Lock()
	delete(rt.raylets, node)
	delete(rt.rayletCfg, node)
	rt.mu.Unlock()
	rt.uncordon(node)
	label := node.Short()
	rt.Metrics.GaugeVec(GaugeResidentBytes).Delete(label)
	rt.Metrics.GaugeVec(GaugeQueueDepth).Delete(label)
	rt.Metrics.GaugeVec(GaugeActorCount).Delete(label)

	rep.Dur = time.Since(start)
	root.SetAttr("bytes", fmt.Sprint(rep.BytesMoved))
	return rep, nil
}

// drainTargets returns the nodes eligible to absorb a drained node's data:
// alive raylet hosts that are not the source, the driver, or themselves
// cordoned for removal. Falls back to the driver if no worker remains.
func (rt *Runtime) drainTargets(src idgen.NodeID) []idgen.NodeID {
	rt.mu.Lock()
	var out []idgen.NodeID
	for id := range rt.raylets {
		if id == src || id == rt.driver {
			continue
		}
		if _, parked := rt.autoscale.cordoned[id]; parked {
			continue
		}
		if n := rt.Cluster.Node(id); n == nil || !n.Alive() {
			continue
		}
		out = append(out, id)
	}
	rt.mu.Unlock()
	if len(out) == 0 {
		return []idgen.NodeID{rt.driver}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// SampleNodeGauges refreshes the per-node gauge families (resident bytes,
// queue depth, actor count) and returns the matching load sample for the
// rebalance planner.
func (rt *Runtime) SampleNodeGauges() []scheduler.NodeLoad {
	rt.mu.Lock()
	actorCount := make(map[idgen.NodeID]int)
	for _, p := range rt.actorLoc {
		actorCount[p.node]++
	}
	cfgs := make(map[idgen.NodeID]struct {
		backend string
		proxied bool
	}, len(rt.rayletCfg))
	nodes := make([]idgen.NodeID, 0, len(rt.raylets))
	for id := range rt.raylets {
		if id == rt.driver {
			continue
		}
		nodes = append(nodes, id)
		cfg := rt.rayletCfg[id]
		cfgs[id] = struct {
			backend string
			proxied bool
		}{cfg.Backend, !cfg.DPUProxy.IsNil()}
	}
	rt.mu.Unlock()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Less(nodes[j]) })

	resident := rt.Metrics.GaugeVec(GaugeResidentBytes)
	queue := rt.Metrics.GaugeVec(GaugeQueueDepth)
	actorsVec := rt.Metrics.GaugeVec(GaugeActorCount)

	loads := make([]scheduler.NodeLoad, 0, len(nodes))
	for _, id := range nodes {
		var used int64
		if store := rt.Layer.Store(id); store != nil {
			used = store.Used()
		}
		depth := rt.Sched.Inflight(id)
		label := id.Short()
		resident.With(label).Set(used)
		queue.With(label).Set(int64(depth))
		actorsVec.With(label).Set(int64(actorCount[id]))
		n := rt.Cluster.Node(id)
		unreachable := n == nil || !n.Alive() || rt.chaosEng.Partitioned(rt.driver, id)
		loads = append(loads, scheduler.NodeLoad{
			ID:            id,
			Backend:       cfgs[id].backend,
			ResidentBytes: used,
			QueueDepth:    depth,
			Actors:        actorCount[id],
			DPUProxied:    cfgs[id].proxied,
			Unreachable:   unreachable,
		})
	}
	return loads
}

// Rebalance samples node load, plans moves (hot-spill plus optional
// Gen-1 → Gen-2 offload), and realizes each move with live object
// migrations, largest objects first, until the planned volume has moved.
// Returns the executed plan.
func (rt *Runtime) Rebalance(ctx context.Context, cfg scheduler.RebalanceConfig) ([]scheduler.Move, error) {
	ctx, root := rt.tracer.StartRoot(ctx, idgen.Next(), trace.KindRebalance, rt.driver)
	defer root.End()
	loads := rt.SampleNodeGauges()
	moves := scheduler.PlanRebalance(loads, cfg)
	for _, mv := range moves {
		store := rt.Layer.Store(mv.From)
		if store == nil {
			continue
		}
		ids := store.List()
		// Largest first: fewest migrations to hit the target volume.
		sort.Slice(ids, func(i, j int) bool {
			si, _ := store.Size(ids[i])
			sj, _ := store.Size(ids[j])
			if si != sj {
				return si > sj
			}
			return ids[i].Less(ids[j])
		})
		var moved int64
		for _, id := range ids {
			if moved >= mv.Bytes {
				break
			}
			if _, err := rt.Head.Table.Get(id); err != nil {
				continue // EC shard or untracked blob
			}
			orep, err := rt.migrator.MigrateObject(ctx, id, mv.From, mv.To)
			if err != nil {
				continue // object busy or gone; the next pass retries
			}
			if orep.Moved {
				moved += orep.Bytes
			}
		}
	}
	// Refresh the gauges so observers see the post-move distribution.
	rt.SampleNodeGauges()
	return moves, nil
}

// CreateActorOn pins a new actor to an explicit node — experiments use it
// to control initial placement (e.g. placing the victim of a migration
// benchmark).
func (rt *Runtime) CreateActorOn(node idgen.NodeID, backend string) (idgen.ActorID, error) {
	rt.mu.Lock()
	_, ok := rt.raylets[node]
	rt.mu.Unlock()
	if !ok {
		return idgen.Nil, fmt.Errorf("runtime: no raylet on node %s", node.Short())
	}
	actor := idgen.Next()
	rt.mu.Lock()
	rt.actorLoc[actor] = actorPlacement{node: node, backend: backend}
	rt.mu.Unlock()
	return actor, nil
}
