package runtime

import (
	"context"
	"testing"
	"time"

	"skadi/internal/task"
)

func TestFreeReclaimsEverything(t *testing.T) {
	rt, err := New(ClusterSpec{
		Servers: 3, ServerSlots: 2, ServerMemBytes: 64 << 20,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	rt.Registry.Register("blob", func(_ *task.Context, _ [][]byte) ([][]byte, error) {
		return [][]byte{make([]byte, 1<<20)}, nil
	})

	ctx := context.Background()
	spec := task.NewSpec(rt.Job(), "blob", nil, 1)
	refs := rt.Submit(spec)
	if _, err := rt.Get(ctx, refs[0]); err != nil {
		t.Fatal(err)
	}
	rt.Drain()
	if rt.Layer.StorageBytes() == 0 {
		t.Fatal("setup: nothing stored")
	}

	rt.Free(refs[0])
	if got := rt.Layer.StorageBytes(); got != 0 {
		t.Errorf("StorageBytes = %d after Free, want 0 (driver-cached copy must go too)", got)
	}
	if rt.Head.Table.Len() != 0 {
		t.Errorf("ownership entries = %d after Free", rt.Head.Table.Len())
	}
	if rt.Head.Lineage.Len() != 0 {
		t.Errorf("lineage entries = %d after Free", rt.Head.Lineage.Len())
	}
	// Freed objects are gone for good.
	ctx2, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if _, err := rt.Get(ctx2, refs[0]); err == nil {
		t.Error("Get after Free should fail")
	}
}

func TestFreeIsIdempotent(t *testing.T) {
	rt, err := New(ClusterSpec{
		Servers: 2, ServerSlots: 2, ServerMemBytes: 64 << 20,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	id, err := rt.Put([]byte("x"), "raw")
	if err != nil {
		t.Fatal(err)
	}
	rt.Free(id)
	rt.Free(id) // second free is a no-op, not a panic
}
