// Package runtime composes the substrates into Skadi's stateful serverless
// runtime (§2.3): a simulated disaggregated cluster with a head service
// (ownership + lineage), a raylet per executable node, the caching layer
// spanning every memory tier, and the centralized scheduler. It exposes the
// distributed task API — Put/Submit/Get/Wait, actors, gang submission — and
// failure handling by lineage re-execution or reliable caching.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skadi/internal/caching"
	"skadi/internal/chaos"
	"skadi/internal/cluster"
	"skadi/internal/dsm"
	"skadi/internal/fabric"
	"skadi/internal/gossip"
	"skadi/internal/idgen"
	"skadi/internal/metrics"
	"skadi/internal/migrate"
	"skadi/internal/objectstore"
	"skadi/internal/ownership"
	"skadi/internal/raylet"
	"skadi/internal/scheduler"
	"skadi/internal/skaderr"
	"skadi/internal/task"
	"skadi/internal/tenancy"
	"skadi/internal/trace"
	"skadi/internal/transport"
)

// DeviceMode selects the hardware generation of §2.3.2.
type DeviceMode int

// Device wiring modes.
const (
	// Gen1 is the CPU-centric model: device raylets run on DPUs and every
	// device message transits the DPU.
	Gen1 DeviceMode = iota
	// Gen2 is the device-centric model: each device runs its own raylet
	// and talks to peers directly.
	Gen2
)

// String returns the mode name.
func (m DeviceMode) String() string {
	if m == Gen2 {
		return "gen2"
	}
	return "gen1"
}

// RecoveryMode selects the failure-handling strategy (§2.1).
type RecoveryMode int

// Recovery strategies.
const (
	// RecoverNone surfaces lost objects as errors.
	RecoverNone RecoveryMode = iota
	// RecoverLineage re-executes producing tasks.
	RecoverLineage
	// RecoverCache relies on the caching layer's replicas or EC shards.
	RecoverCache
)

// ClusterSpec sizes the simulated data center.
type ClusterSpec struct {
	// Servers is the number of worker servers (plus one implicit head).
	Servers int
	// ServerSlots is the per-server worker count.
	ServerSlots int
	// ServerMemBytes is the per-server object-store capacity.
	ServerMemBytes int64
	// GPUs and FPGAs are disaggregated device counts.
	GPUs, FPGAs int
	// DeviceSlots and DeviceMemBytes size each device.
	DeviceSlots    int
	DeviceMemBytes int64
	// MemBladeBytes, if positive, adds a disaggregated memory blade.
	MemBladeBytes int64
	// Racks spreads servers across this many racks (default 1).
	Racks int
}

// DefaultClusterSpec returns a small mixed cluster: 4 servers, 2 GPUs,
// 2 FPGAs, and a 1 GiB memory blade.
func DefaultClusterSpec() ClusterSpec {
	return ClusterSpec{
		Servers: 4, ServerSlots: 4, ServerMemBytes: 256 << 20,
		GPUs: 2, FPGAs: 2, DeviceSlots: 2, DeviceMemBytes: 64 << 20,
		MemBladeBytes: 1 << 30, Racks: 2,
	}
}

// Options configures runtime behaviour.
type Options struct {
	// TimeScale scales simulated fabric and kernel delays (0 = accounting
	// only, the test default).
	TimeScale float64
	// Resolution selects pull or push future resolution.
	Resolution raylet.Resolution
	// Policy selects the scheduling policy.
	Policy scheduler.Policy
	// Caching configures the caching layer (reliability mode etc.).
	Caching caching.Config
	// DeviceMode selects Gen-1 or Gen-2 device wiring.
	DeviceMode DeviceMode
	// Recovery selects the failure-handling strategy.
	Recovery RecoveryMode
	// Tenancy configures the multi-tenant control plane (fair share,
	// preemption). The controller stays inert — zero cost on every submit
	// path — until RegisterTenant is called.
	Tenancy tenancy.Options
	// Decentralized replaces the centralized control plane with the
	// distributed one: the ownership directory is sharded across raylet
	// nodes by consistent hashing, placement runs on the per-node
	// work-stealing mesh instead of the global-lock scheduler, and node
	// liveness is decided by SWIM-style gossip instead of the head.
	Decentralized bool
	// GossipInterval is the background failure-detector tick period in
	// decentralized mode (default 2ms; ignored when Decentralized is off).
	GossipInterval time.Duration
}

// Runtime is a running Skadi instance.
type Runtime struct {
	Cluster *cluster.Cluster
	Layer   *caching.Layer
	Head    *raylet.Head
	// Sched is the placement engine: the centralized *scheduler.Scheduler
	// by default, the work-stealing *scheduler.Mesh in decentralized mode.
	Sched    scheduler.Placer
	Registry *task.Registry
	// Metrics holds runtime-level gauges: per-node resident bytes, actor
	// counts, and queue depths (GaugeVec families keyed by node), refreshed
	// by SampleNodeGauges and read by the rebalancer and `skadi -trace`.
	Metrics *metrics.Registry
	// Tenancy is the multi-tenant control plane: admission, fair-share
	// slot grants with preemption, and worker/cache-byte quotas. Inert
	// until RegisterTenant.
	Tenancy *tenancy.Controller
	tracer  *trace.Tracer

	opts      Options
	driver    idgen.NodeID
	raylets   map[idgen.NodeID]*raylet.Raylet
	rayletCfg map[idgen.NodeID]raylet.Config
	drv       *raylet.Raylet
	pool      *dsm.Pool
	job       idgen.JobID
	migrator  *migrate.Migrator

	mu         sync.Mutex
	recoveryMu sync.Mutex
	errs       map[idgen.ObjectID]error
	// tasks tracks every submitted-but-unfinished task's cancellation
	// control, keyed by task ID; Cancel walks lineage and fires these.
	tasks    map[idgen.TaskID]*taskCtl
	actorLoc map[idgen.ActorID]actorPlacement
	// actorGate pauses task dispatch for an actor mid-migration: submissions
	// park on the channel until the cutover lands, so none are lost.
	actorGate map[idgen.ActorID]chan struct{}
	inflight  sync.WaitGroup
	autoscale autoscaleState
	// retiredExecuted accumulates TasksExecuted from raylets discarded by
	// RestartNode, so TasksExecuted() stays monotonic across crash/restart
	// cycles instead of losing the crashed node's history.
	retiredExecuted int64

	// chaosEng interposes on the transport for fault injection; always
	// present, transparent until a plan is installed. See chaosctl.go.
	chaosEng *chaos.Engine

	// Decentralized control plane (all nil/zero in centralized mode). See
	// decentral.go for the wiring.
	sharded    *ownership.ShardedTable
	mesh       *scheduler.Mesh
	gossip     *gossip.Cluster
	gossipStop chan struct{}
	gossipWG   sync.WaitGroup
	// gossipProbe sends one failure-detector probe over the transport
	// (raylet.GossipProber); gossipReachable composes it with cluster
	// liveness.
	gossipProbe func(from, to idgen.NodeID) bool
}

// Metric names for the cancellation subsystem, read by `skadi -trace` and
// experiment E16.
const (
	MetricTasksCancelled        = "tasks_cancelled"
	MetricWorkersReclaimed      = "workers_reclaimed"
	MetricBytesReclaimed        = "bytes_reclaimed"
	MetricTasksDeadlineExceeded = "tasks_deadline_exceeded"
)

// taskCtl is the cancellation control for one in-flight task: the cancel
// function revokes its dispatch context (interrupting the exec RPC and, over
// the wire, the remote handler), and executing reports whether the task
// currently occupies a worker — the distinction behind the WorkersReclaimed
// counter.
type taskCtl struct {
	spec      *task.Spec
	cancel    context.CancelCauseFunc
	executing atomic.Bool
}

// registerTask tracks a task's cancellation control until dropTask.
func (rt *Runtime) registerTask(ctl *taskCtl) {
	rt.mu.Lock()
	rt.tasks[ctl.spec.ID] = ctl
	rt.mu.Unlock()
}

// dropTask forgets a finished task's control.
func (rt *Runtime) dropTask(id idgen.TaskID) {
	rt.mu.Lock()
	delete(rt.tasks, id)
	rt.mu.Unlock()
}

// taskCtl returns the control for a task, or nil once it finished.
func (rt *Runtime) taskCtl(id idgen.TaskID) *taskCtl {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.tasks[id]
}

// actorPlacement records where an actor lives and what backend it needs,
// so a failed actor can be re-placed on a compatible node.
type actorPlacement struct {
	node    idgen.NodeID
	backend string
}

// locator adapts the caching layer + ownership directory to the
// scheduler's ObjectLocator.
type locator struct {
	layer *caching.Layer
	table ownership.Directory
}

func (l *locator) Locations(id idgen.ObjectID) []idgen.NodeID { return l.layer.Locations(id) }

func (l *locator) Size(id idgen.ObjectID) int64 {
	rec, err := l.table.Get(id)
	if err != nil {
		return 0
	}
	return rec.Size
}

// New builds a cluster from spec and boots a runtime on it.
func New(spec ClusterSpec, opts Options) (*Runtime, error) {
	if spec.Racks < 1 {
		spec.Racks = 1
	}
	c := cluster.New(cluster.Config{TimeScale: opts.TimeScale})
	rt := &Runtime{
		Cluster:   c,
		Registry:  task.NewRegistry(),
		Metrics:   metrics.NewRegistry(),
		tracer:    trace.New(),
		opts:      opts,
		raylets:   make(map[idgen.NodeID]*raylet.Raylet),
		rayletCfg: make(map[idgen.NodeID]raylet.Config),
		errs:      make(map[idgen.ObjectID]error),
		tasks:     make(map[idgen.TaskID]*taskCtl),
		actorLoc:  make(map[idgen.ActorID]actorPlacement),
		actorGate: make(map[idgen.ActorID]chan struct{}),
		job:       idgen.Next(),
	}
	rt.initChaos()
	rt.Tenancy = tenancy.NewController(opts.Tenancy, rt.Metrics)

	layer, err := caching.NewLayer(c.Fabric, opts.Caching)
	if err != nil {
		return nil, err
	}
	rt.Layer = layer
	// Cache-byte quotas gate the put path; evictions under per-tenant
	// pressure free the object cluster-wide (ownership + residency +
	// lineage) so the chaos residency invariant keeps holding.
	layer.SetQuota(rt.Tenancy)
	rt.Tenancy.SetEvictor(func(id idgen.ObjectID) { rt.Free(id) })

	// Head node: hosts the ownership service, the driver, and a driver-side
	// raylet for result fetching. It is not a scheduling target.
	headNode := c.AddServer("head", 0, 2, 1<<30)
	rt.driver = headNode.ID
	rt.Head = raylet.NewHead(headNode.ID)
	layer.AddStore(headNode.ID, caching.HostDRAM, objectstore.New(1<<30, nil))
	if opts.Decentralized {
		// Swap the head's centralized table for the sharded directory before
		// any traffic. The head is a permanent ring member, so the ring is
		// never empty: worker crashes hand their shards somewhere, and a
		// one-node cluster still resolves every key.
		rt.sharded = ownership.NewSharded(0)
		rt.sharded.AddMember(headNode.ID)
		rt.Head.Table = rt.sharded
		rt.gossipProbe = raylet.GossipProber(c.Transport, 0)
		rt.gossip = gossip.New(gossip.Config{}, rt.gossipReachable)
		rt.gossip.Join(headNode.ID)
		rt.gossip.Drain()
	}
	// Residency guard: a commit naming a location must be backed by bytes —
	// either in that node's store or redundantly elsewhere (DSM, EC,
	// another verified replica). Rejects own.ready/own.addloc messages from
	// producers whose node was wiped between their local write and the
	// commit landing at the head (the commit-vs-crash race chaos kills hit).
	rt.Head.Table.SetCommitGuard(func(loc idgen.NodeID, id idgen.ObjectID) bool {
		if st := layer.Store(loc); st != nil && st.Contains(id) {
			return true
		}
		return layer.RecoverableWithout(loc, id)
	})

	loc := &locator{layer: layer, table: rt.Head.Table}
	if opts.Decentralized {
		rt.mesh = scheduler.NewMesh(opts.Policy, loc)
		rt.Sched = rt.mesh
	} else {
		rt.Sched = scheduler.New(opts.Policy, loc)
	}
	// Worker quotas are enforced twice: at the tenancy slot gate (the
	// primary, fair-share path) and here at placement, covering gang and
	// recovery placements that bypass the gate.
	rt.Sched.SetGate(func(spec *task.Spec) error {
		return rt.Tenancy.WorkerQuota(spec.Tenant)
	})

	// Memory blade first so stores can spill to it.
	if spec.MemBladeBytes > 0 {
		_, blade := c.AddMemBlade("mem", 0, spec.MemBladeBytes)
		rt.pool = dsm.New(c.Fabric, blade.ID, spec.MemBladeBytes)
		layer.SetDSM(rt.pool)
	}

	// Worker servers.
	for i := 0; i < spec.Servers; i++ {
		node := c.AddServer(fmt.Sprintf("server-%d", i), i%spec.Racks, spec.ServerSlots, spec.ServerMemBytes)
		if err := rt.addRaylet(node, "cpu", spec.ServerSlots, idgen.Nil); err != nil {
			return nil, err
		}
	}

	// Disaggregated devices.
	addDevices := func(n int, kind cluster.NodeKind, name string) error {
		if n <= 0 {
			return nil
		}
		switch opts.DeviceMode {
		case Gen2:
			devices := c.AddDirectDevices(name, 0, 1, n, kind, spec.DeviceSlots, spec.DeviceMemBytes)
			for _, d := range devices {
				if err := rt.addRaylet(d, kind.Backend(), spec.DeviceSlots, idgen.Nil); err != nil {
					return err
				}
			}
		default: // Gen1
			dpu, devices := c.AddDeviceGroup(name, 0, -1, n, kind, spec.DeviceSlots, spec.DeviceMemBytes)
			for _, d := range devices {
				if err := rt.addRaylet(d, kind.Backend(), spec.DeviceSlots, dpu.ID); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := addDevices(spec.GPUs, cluster.GPUDevice, "gpu"); err != nil {
		return nil, err
	}
	if err := addDevices(spec.FPGAs, cluster.FPGADevice, "fpga"); err != nil {
		return nil, err
	}

	// Driver-side raylet on the head node, multiplexed with the head
	// service on one transport endpoint. Not a scheduling target.
	drvCfg := raylet.Config{
		Node: headNode.ID, Backend: "cpu", Slots: 2,
		Head: headNode.ID, Transport: c.Transport, Fabric: c.Fabric,
		Layer: layer, Registry: rt.Registry, Resolution: opts.Resolution,
		TimeScale: opts.TimeScale,
	}
	if rt.sharded != nil {
		drvCfg.Directory = rt.sharded
		drvCfg.OwnerRouter = rt.sharded.OwnerOf
	}
	drv, err := raylet.New(drvCfg)
	if err != nil {
		return nil, err
	}
	rt.drv = drv
	headHandler := rt.Head.Handler()
	drvHandler := drv.Handler()
	err = c.Transport.Listen(headNode.ID, func(ctx context.Context, from idgen.NodeID, kind string, payload []byte) ([]byte, error) {
		if strings.HasPrefix(kind, "own.") || strings.HasPrefix(kind, "actor.") {
			return headHandler(ctx, from, kind, payload)
		}
		return drvHandler(ctx, from, kind, payload)
	})
	if err != nil {
		return nil, err
	}
	rt.migrator = migrate.New(migrate.Config{
		Self: headNode.ID, Head: headNode.ID, Transport: c.Transport,
	})
	if rt.gossip != nil {
		rt.startGossipPump(opts.GossipInterval)
	}
	return rt, nil
}

// addRaylet creates, starts, and registers a raylet for a node.
func (rt *Runtime) addRaylet(node *cluster.Node, backend string, slots int, dpuProxy idgen.NodeID) error {
	rt.Layer.AddStore(node.ID, tierFor(node.Kind), objectstore.New(node.Res.MemBytes, nil))
	cfg := raylet.Config{
		Node: node.ID, Backend: backend, Slots: slots,
		Head: rt.driver, Transport: rt.Cluster.Transport, Fabric: rt.Cluster.Fabric,
		Layer: rt.Layer, Registry: rt.Registry, Resolution: rt.opts.Resolution,
		DPUProxy: dpuProxy, TimeScale: rt.opts.TimeScale,
	}
	if rt.sharded != nil {
		// Decentralized: the raylet serves its own directory shard and
		// routes ownership RPCs to whichever node the ring says owns the key.
		cfg.Directory = rt.sharded
		cfg.OwnerRouter = rt.sharded.OwnerOf
	}
	rl, err := raylet.New(cfg)
	if err != nil {
		return err
	}
	if err := rl.Start(); err != nil {
		return err
	}
	rt.mu.Lock()
	rt.raylets[node.ID] = rl
	rt.rayletCfg[node.ID] = cfg
	rt.mu.Unlock()
	rt.Sched.AddNode(scheduler.NodeInfo{ID: node.ID, Backend: backend, Slots: slots})
	if rt.sharded != nil {
		// Joining the ring pulls this node's key range over from the
		// existing members (whole-entry handoff: waiters and forwards move
		// with the records); joining gossip makes it probe-able.
		rt.sharded.AddMember(node.ID)
		rt.gossip.Join(node.ID)
		rt.applyGossipEvents(rt.gossip.Drain())
	}
	// The node's slots and store bytes join the capacity pool the
	// fair-share controller divides among tenants.
	rt.Tenancy.AddCapacity(slots, node.Res.MemBytes)
	return nil
}

func tierFor(kind cluster.NodeKind) caching.Tier {
	switch kind {
	case cluster.GPUDevice, cluster.FPGADevice:
		return caching.DeviceHBM
	case cluster.MemBlade:
		return caching.DisaggMem
	default:
		return caching.HostDRAM
	}
}

// Driver returns the driver/head node ID.
func (rt *Runtime) Driver() idgen.NodeID { return rt.driver }

// RegisterTenant activates the multi-tenant control plane for one tenant:
// subsequent submits tagged with the tenant (tenancy.ContextWith or
// Spec.Tenant) are admission-controlled, fair-share scheduled, and bounded
// by the config's quotas.
func (rt *Runtime) RegisterTenant(cfg tenancy.Config) error {
	return rt.Tenancy.RegisterTenant(cfg)
}

// Tracer returns the runtime's span store. Every submitted task records a
// trace under its task ID: submit → sched-pick → exec/pull-stall/fetch →
// cache puts and fabric transfers, ready for critical-path analysis.
func (rt *Runtime) Tracer() *trace.Tracer { return rt.tracer }

// traceCtx opens the root span of a task's trace, keyed by the task ID. The
// parent context carries the submitter's deadline and cancellation, which
// thereby bound every downstream hop of the task.
func (rt *Runtime) traceCtx(parent context.Context, spec *task.Spec) (context.Context, *trace.Span) {
	ctx, root := rt.tracer.StartRoot(parent, spec.ID, trace.KindSubmit, rt.driver)
	root.SetAttr("fn", spec.Fn)
	return ctx, root
}

// Job returns the runtime's default job ID.
func (rt *Runtime) Job() idgen.JobID { return rt.job }

// Raylet returns the raylet running on a node, or nil.
func (rt *Runtime) Raylet(node idgen.NodeID) *raylet.Raylet {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.raylets[node]
}

// Raylets returns every worker raylet, in cluster insertion order.
func (rt *Runtime) Raylets() []*raylet.Raylet {
	nodes := rt.Cluster.Nodes()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	out := make([]*raylet.Raylet, 0, len(rt.raylets))
	for _, n := range nodes {
		if rl, ok := rt.raylets[n.ID]; ok {
			out = append(out, rl)
		}
	}
	return out
}

// TasksExecuted returns the cluster-wide count of completed task
// executions, including those performed by raylets since discarded by
// crash/restart cycles. Executions beyond one per submitted task are
// recovery work: dispatch retries and lineage replays.
func (rt *Runtime) TasksExecuted() int64 {
	rt.mu.Lock()
	total := rt.retiredExecuted
	rt.mu.Unlock()
	for _, rl := range rt.Raylets() {
		total += rl.Stats().TasksExecuted
	}
	return total
}

// Put stores driver-provided input data and returns its reference.
func (rt *Runtime) Put(data []byte, format string) (idgen.ObjectID, error) {
	return rt.PutAt(rt.driver, data, format)
}

// PutAt stores input data onto a specific node — experiments use it to
// control initial shard placement. Data placed off-driver is charged to
// the fabric.
func (rt *Runtime) PutAt(node idgen.NodeID, data []byte, format string) (idgen.ObjectID, error) {
	id := idgen.Next()
	if node != rt.driver {
		// Bulk placement streams in pipelined chunks: one latency plus the
		// bandwidth cost, however large the input shard.
		rt.Cluster.Fabric.TransferData(rt.driver, node, data)
	}
	if err := rt.Layer.Put(node, id, data, format); err != nil {
		return idgen.Nil, err
	}
	if err := rt.Head.Table.CreatePending(id, rt.driver, idgen.Nil); err != nil {
		return idgen.Nil, err
	}
	if _, err := rt.Head.Table.MarkReady(id, int64(len(data)), node, idgen.Nil, ""); err != nil {
		return idgen.Nil, err
	}
	return id, nil
}

// Submit schedules a task asynchronously and returns its result references
// immediately (futures). Errors surface through Get on the returns.
func (rt *Runtime) Submit(spec *task.Spec) []idgen.ObjectID {
	return rt.SubmitCtx(context.Background(), spec)
}

// SubmitCtx is Submit with an end-to-end context: a deadline or cancellation
// on ctx bounds the whole task — scheduling, argument pulls, the kernel, and
// commits — failing the task's futures with skaderr.DeadlineExceeded or
// skaderr.Cancelled.
func (rt *Runtime) SubmitCtx(ctx context.Context, spec *task.Spec) []idgen.ObjectID {
	return rt.submitAsync(ctx, idgen.Nil, spec)
}

// SubmitTo schedules a task on an explicit node, bypassing the scheduler —
// the physical graph planner uses it to realize its placements.
func (rt *Runtime) SubmitTo(node idgen.NodeID, spec *task.Spec) []idgen.ObjectID {
	return rt.SubmitToCtx(context.Background(), node, spec)
}

// SubmitToCtx is SubmitTo with an end-to-end context (see SubmitCtx).
func (rt *Runtime) SubmitToCtx(ctx context.Context, node idgen.NodeID, spec *task.Spec) []idgen.ObjectID {
	return rt.submitAsync(ctx, node, spec)
}

// submitAsync registers, traces, and dispatches one task in the background.
func (rt *Runtime) submitAsync(ctx context.Context, pinned idgen.NodeID, spec *task.Spec) []idgen.ObjectID {
	rt.prepare(spec)
	// Tenant attribution: an explicit Spec.Tenant wins; otherwise the
	// submit context's tenant tags the spec, so attribution survives
	// re-dispatch and rides the wire with the exec RPC.
	if spec.Tenant == "" {
		spec.Tenant, _ = tenancy.FromContext(ctx)
	} else if t, _ := tenancy.FromContext(ctx); t != spec.Tenant {
		ctx = tenancy.ContextWith(ctx, spec.Tenant)
	}
	// Admission control: an over-bounds submit blocks here (backpressure)
	// or fails its futures with a typed skaderr.ResourceExhausted before
	// any dispatch machinery spins up — the pending queue stays bounded.
	if err := rt.Tenancy.Admit(ctx, spec.Tenant); err != nil {
		rt.failTask(spec, err)
		return spec.Returns
	}
	tctx, cancel := context.WithCancelCause(ctx)
	ctl := &taskCtl{spec: spec, cancel: cancel}
	rt.registerTask(ctl)
	rt.inflight.Add(1)
	rt.autoscale.pending.Add(1)
	tctx, root := rt.traceCtx(tctx, spec)
	go func() {
		defer rt.inflight.Done()
		defer rt.autoscale.pending.Add(-1)
		defer root.End()
		defer cancel(nil)
		defer rt.dropTask(spec.ID)
		dequeued, ok := rt.dispatch(tctx, spec, pinned)
		rt.Tenancy.TaskDone(spec.Tenant, dequeued, ok)
	}()
	return spec.Returns
}

// SubmitGang atomically places a gang of tasks (SPMD subgraph) and runs
// them; it retries placement until capacity frees up or ctx expires.
func (rt *Runtime) SubmitGang(ctx context.Context, specs []*task.Spec) ([][]idgen.ObjectID, error) {
	gangTenant, _ := tenancy.FromContext(ctx)
	for _, s := range specs {
		if s.Tenant == "" {
			s.Tenant = gangTenant
		}
		rt.prepare(s)
	}
	// Gang members count toward the autoscaler's pending-task signal just
	// like Submit/SubmitTo tasks, so SPMD bursts trigger scale-up.
	rt.autoscale.pending.Add(int64(len(specs)))
	var placements []idgen.NodeID
	for {
		// Obtain the capacity watch BEFORE attempting placement: capacity
		// freed between a failed attempt and the wait would otherwise be a
		// lost wakeup. No polling floor — the scheduler wakes us when a task
		// finishes, a node revives, or a node is added.
		watch := rt.Sched.CapacityWatch()
		var err error
		placements, err = rt.Sched.PickGang(specs)
		if err == nil {
			break
		}
		if !errors.Is(err, scheduler.ErrNoCapacity) {
			rt.autoscale.pending.Add(-int64(len(specs)))
			return nil, err
		}
		select {
		case <-ctx.Done():
			rt.autoscale.pending.Add(-int64(len(specs)))
			return nil, skaderr.Mark(skaderr.CodeOf(ctx.Err()), ctx.Err())
		case <-watch:
		}
	}
	refs := make([][]idgen.ObjectID, len(specs))
	for i, s := range specs {
		refs[i] = s.Returns
		// Gang members bypass tenant admission (gating individual members
		// could deadlock a gang against itself — PickGang already reserved
		// their slots atomically) but are tracked so per-tenant accounting
		// and dominant shares include gang slot occupancy.
		rt.Tenancy.Track(s.Tenant)
		rt.inflight.Add(1)
		gctx, cancel := context.WithCancelCause(ctx)
		ctl := &taskCtl{spec: s, cancel: cancel}
		rt.registerTask(ctl)
		tctx, root := rt.traceCtx(gctx, s)
		root.SetAttr("gang", s.Gang)
		go func(i int, s *task.Spec, tctx context.Context, root *trace.Span, ctl *taskCtl) {
			defer rt.inflight.Done()
			defer rt.autoscale.pending.Add(-1)
			defer root.End()
			defer ctl.cancel(nil)
			defer rt.dropTask(s.ID)
			rt.Tenancy.GangStarted(s.Tenant)
			ctl.executing.Store(true)
			err := rt.execOn(tctx, placements[i], s)
			ctl.executing.Store(false)
			rt.Sched.Finished(placements[i])
			rt.Tenancy.GangFinished(s.Tenant)
			if err != nil {
				if cause := context.Cause(tctx); cause != nil {
					err = cause
				}
				rt.failTask(s, err)
			}
			rt.Tenancy.TaskDone(s.Tenant, true, err == nil)
		}(i, s, tctx, root, ctl)
	}
	return refs, nil
}

// prepare registers a spec's returns and lineage before dispatch.
func (rt *Runtime) prepare(spec *task.Spec) {
	if spec.Job.IsNil() {
		spec.Job = rt.job
	}
	spec.Owner = rt.driver
	for _, ret := range spec.Returns {
		// Ignore ErrExists: recovery re-dispatches recorded specs.
		_ = rt.Head.Table.CreatePending(ret, rt.driver, spec.ID)
	}
	rt.Head.Lineage.Record(spec)
}

// dispatch picks a node (unless pinned) and executes the task, retrying on
// dead nodes. It reports whether the task left the tenancy pending queue
// (took a slot grant it did not give back) and whether it succeeded; the
// caller concludes per-tenant accounting with both.
func (rt *Runtime) dispatch(ctx context.Context, spec *task.Spec, pinned idgen.NodeID) (dequeued, ok bool) {
	const maxAttempts = 3
	// Migration redirects are bounded separately from failure attempts: a
	// bounced task is not a failure, but a pathological migration storm
	// must not loop forever.
	const maxRedirects = 16
	// Preemption replays are bounded generously: each replay means the
	// fair-share controller revoked this task for an under-share tenant —
	// progress for the cluster, but a pathological seesaw must not loop
	// forever either.
	const maxPreemptions = 64
	redirects, preemptions := 0, 0
	ctl := rt.taskCtl(spec.ID)
	// requeue re-enters the tenancy pending queue between attempts: the
	// task gave its slot grant back and will contend again.
	requeue := func() {
		rt.Tenancy.Requeue(spec.Tenant)
		dequeued = false
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		// Cancellation checkpoint between attempts: a revoked task stops
		// before taking a node, and the recorded error carries the cause
		// (skaderr.Cancelled or DeadlineExceeded), not a transport artifact.
		if cause := context.Cause(ctx); cause != nil {
			rt.failTask(spec, cause)
			return dequeued, false
		}
		// Fair-share slot gate: blocks until this tenant may occupy one
		// more worker (weighted dominant share, priority bands, MaxWorkers
		// quota). A nil grant means tenancy is inert. The grant's cancel
		// hook is what makes the running attempt preemptible.
		grant, gerr := rt.Tenancy.Acquire(ctx, spec.Tenant, spec.ID)
		if gerr != nil {
			rt.failTask(spec, gerr)
			return dequeued, false
		}
		attemptCtx, attemptCancel := ctx, context.CancelCauseFunc(nil)
		if grant != nil {
			dequeued = true
			attemptCtx, attemptCancel = context.WithCancelCause(ctx)
			grant.BindCancel(func(cause error) { attemptCancel(cause) })
		}
		// endAttempt releases the slot AFTER the scheduler forgets the
		// in-flight task, so a preemption-freed node is the least-loaded
		// candidate when the woken waiter places its task.
		endAttempt := func(node idgen.NodeID) {
			if !node.IsNil() {
				rt.Sched.Finished(node)
			}
			if grant != nil {
				grant.Release()
			}
			if attemptCancel != nil {
				attemptCancel(nil)
			}
		}
		node := pinned
		if node.IsNil() {
			if !spec.Actor.IsNil() {
				rt.waitActorGate(attemptCtx, spec.Actor)
				rt.mu.Lock()
				node = rt.actorLoc[spec.Actor].node
				rt.mu.Unlock()
			}
			if node.IsNil() {
				var err error
				node, err = rt.Sched.PickCtx(attemptCtx, spec)
				if err != nil {
					endAttempt(idgen.Nil)
					rt.failTask(spec, err)
					return dequeued, false
				}
			} else {
				rt.Sched.Started(node)
			}
		} else {
			rt.Sched.Started(node)
		}
		if ctl != nil {
			ctl.executing.Store(true)
		}
		err := rt.execOn(attemptCtx, node, spec)
		if ctl != nil {
			ctl.executing.Store(false)
		}
		preempted := grant != nil &&
			skaderr.CodeOf(context.Cause(attemptCtx)) == skaderr.Preempted
		endAttempt(node)
		if err == nil {
			return dequeued, true
		}
		if cause := context.Cause(ctx); cause != nil {
			rt.failTask(spec, cause)
			return dequeued, false
		}
		lastErr = err
		if preempted {
			// The fair-share controller revoked this attempt for an
			// under-share tenant. Not a failure: replay through the fair
			// queue without consuming an attempt (lineage-style replay —
			// the kernel's partial work is discarded, its inputs are
			// intact, and the next grant re-executes from the spec).
			preemptions++
			if preemptions <= maxPreemptions {
				requeue()
				attempt--
				continue
			}
		}
		var moved *raylet.ActorMigratedError
		if errors.As(err, &moved) && pinned.IsNil() {
			// The actor live-migrated while this task was queued; follow
			// the forward and re-dispatch. Does not consume an attempt.
			rt.mu.Lock()
			p := rt.actorLoc[spec.Actor]
			p.node = moved.To
			rt.actorLoc[spec.Actor] = p
			rt.mu.Unlock()
			redirects++
			if redirects <= maxRedirects {
				requeue()
				attempt--
				continue
			}
		}
		if errors.Is(err, transport.ErrUnreachable) && pinned.IsNil() {
			// The node died; mark it and re-place. Actor tasks retry too:
			// replaceActors re-pins the actor onto a healthy node (it may
			// already have run via KillNode — then it is a no-op) and the
			// next attempt re-resolves the actor's location.
			rt.Sched.SetAlive(node, false)
			if !spec.Actor.IsNil() {
				rt.replaceActors(node)
			}
			requeue()
			continue
		}
		break
	}
	rt.failTask(spec, lastErr)
	return dequeued, false
}

// execOn performs the exec RPC against one raylet.
func (rt *Runtime) execOn(ctx context.Context, node idgen.NodeID, spec *task.Spec) error {
	payload := transport.MustEncode(raylet.ExecRequest{Spec: *spec})
	respB, err := rt.Cluster.Transport.Call(ctx, rt.driver, node, raylet.KindExec, payload)
	if err != nil {
		return err
	}
	if !spec.Actor.IsNil() && len(respB) > 0 {
		var resp raylet.ExecResponse
		if derr := transport.Decode(respB, &resp); derr == nil && !resp.ActorMovedTo.IsNil() {
			return &raylet.ActorMigratedError{Actor: spec.Actor, To: resp.ActorMovedTo}
		}
	}
	return nil
}

// waitActorGate blocks while the actor has a migration gate up, so no
// submission races a cutover.
func (rt *Runtime) waitActorGate(ctx context.Context, actor idgen.ActorID) {
	for {
		rt.mu.Lock()
		gate := rt.actorGate[actor]
		rt.mu.Unlock()
		if gate == nil {
			return
		}
		select {
		case <-gate:
		case <-ctx.Done():
			return
		}
	}
}

// failTask marks every return of a failed task lost and records the error.
// The error is recorded BEFORE MarkLost wakes any waiter, so a Get released
// by the loss always sees the typed failure, never a bare "lost".
func (rt *Runtime) failTask(spec *task.Spec, err error) {
	err = skaderr.Coerce(err)
	if skaderr.CodeOf(err) == skaderr.DeadlineExceeded {
		rt.Metrics.Counter(MetricTasksDeadlineExceeded).Inc()
	}
	rt.mu.Lock()
	for _, ret := range spec.Returns {
		rt.errs[ret] = fmt.Errorf("task %s (%s): %w", spec.ID.Short(), spec.Fn, err)
	}
	rt.mu.Unlock()
	for _, ret := range spec.Returns {
		_ = rt.Head.Table.MarkLost(ret)
	}
}

// taskErr returns the recorded failure for a reference, if any.
func (rt *Runtime) taskErr(id idgen.ObjectID) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.errs[id]
}

// Get blocks until the referenced object is ready and returns its bytes at
// the driver. Under lineage recovery, an object lost after its waiters
// were already in flight (e.g. a chaos kill mid-DAG) is re-derived once by
// replaying its producing tasks before Get reports failure.
func (rt *Runtime) Get(ctx context.Context, id idgen.ObjectID) ([]byte, error) {
	if err := rt.Head.Table.WaitReady(ctx, id); err != nil {
		if rt.opts.Recovery == RecoverLineage && errors.Is(err, ownership.ErrObjectLost) && !rt.terminalFailure(id) {
			rerr := rt.recoverByLineage(ctx, []idgen.ObjectID{id})
			if rerr == nil {
				rt.mu.Lock()
				delete(rt.errs, id)
				rt.mu.Unlock()
				if werr := rt.Head.Table.WaitReady(ctx, id); werr == nil {
					return rt.drv.FetchLocal(ctx, id)
				}
			} else {
				err = fmt.Errorf("%w (lineage recovery also failed: %v)", err, rerr)
			}
		}
		if terr := rt.taskErr(id); terr != nil {
			// The recorded task error is the primary failure: keep it on the
			// %w chain so errors.Is sees its code; the wait error is context.
			return nil, fmt.Errorf("%w (wait: %v)", terr, err)
		}
		return nil, err
	}
	return rt.drv.FetchLocal(ctx, id)
}

// terminalFailure reports whether an object's recorded error is a deliberate
// revocation (cancel or deadline). Lineage recovery must not resurrect such
// tasks: re-executing work the user revoked would defeat the cancellation.
func (rt *Runtime) terminalFailure(id idgen.ObjectID) bool {
	switch skaderr.CodeOf(rt.taskErr(id)) {
	case skaderr.Cancelled, skaderr.DeadlineExceeded:
		return true
	default:
		return false
	}
}

// Wait blocks until at least n of the references are ready (or failed) and
// returns the ready ones.
func (rt *Runtime) Wait(ctx context.Context, ids []idgen.ObjectID, n int) ([]idgen.ObjectID, error) {
	if n > len(ids) {
		n = len(ids)
	}
	// Waiters run under a context canceled when Wait returns, so waiters
	// for not-yet-ready objects do not outlive the call (goroutine leak).
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		id  idgen.ObjectID
		err error
	}
	ch := make(chan result, len(ids))
	for _, id := range ids {
		go func(id idgen.ObjectID) {
			ch <- result{id, rt.Head.Table.WaitReady(wctx, id)}
		}(id)
	}
	var ready []idgen.ObjectID
	for i := 0; i < len(ids) && len(ready) < n; i++ {
		select {
		case res := <-ch:
			if res.err == nil {
				ready = append(ready, res.id)
			}
		case <-ctx.Done():
			return ready, ctx.Err()
		}
	}
	if len(ready) < n {
		return ready, fmt.Errorf("runtime: only %d of %d objects became ready", len(ready), n)
	}
	return ready, nil
}

// Drain blocks until every submitted task has finished dispatching.
func (rt *Runtime) Drain() { rt.inflight.Wait() }

// CreateActor places a stateful actor on a node matching the backend and
// returns its ID. All tasks with this actor ID run serially on that node
// against persistent state.
func (rt *Runtime) CreateActor(backend string) (idgen.ActorID, error) {
	probe := task.NewSpec(rt.job, "", nil, 0)
	probe.Backend = backend
	node, err := rt.Sched.Pick(probe)
	if err != nil {
		return idgen.Nil, err
	}
	rt.Sched.Finished(node)
	actor := idgen.Next()
	rt.mu.Lock()
	rt.actorLoc[actor] = actorPlacement{node: node, backend: backend}
	rt.mu.Unlock()
	return actor, nil
}

// replaceActors re-pins actors from a dead node onto healthy nodes. Their
// next task restores the last checkpoint from the head, so state survives
// up to the failure window of one task.
func (rt *Runtime) replaceActors(dead idgen.NodeID) {
	rt.mu.Lock()
	var orphans []idgen.ActorID
	for actor, p := range rt.actorLoc {
		if p.node == dead {
			orphans = append(orphans, actor)
		}
	}
	rt.mu.Unlock()
	for _, actor := range orphans {
		rt.mu.Lock()
		backend := rt.actorLoc[actor].backend
		rt.mu.Unlock()
		probe := task.NewSpec(rt.job, "", nil, 0)
		probe.Backend = backend
		node, err := rt.Sched.Pick(probe)
		if err != nil {
			continue // no compatible node; the actor stays orphaned
		}
		rt.Sched.Finished(node)
		rt.mu.Lock()
		rt.actorLoc[actor] = actorPlacement{node: node, backend: backend}
		rt.mu.Unlock()
	}
}

// ActorNode returns the node an actor is pinned to.
func (rt *Runtime) ActorNode(actor idgen.ActorID) (idgen.NodeID, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	p, ok := rt.actorLoc[actor]
	return p.node, ok
}

// KillNode simulates a node failure: the node drops off the transport, its
// store contents are lost, and recovery runs per the configured mode.
// It returns the object IDs that lost their last copy.
func (rt *Runtime) KillNode(node idgen.NodeID) []idgen.ObjectID {
	// Route through the chaos engine: the crash lands in the episode
	// journal and the fabric endpoint is unregistered, so in-flight
	// chunked transfers touching this node fail with a typed Unavailable
	// instead of silently completing against a dead peer.
	rt.chaosEng.CrashNode(node)
	rt.Cluster.Kill(node)
	rt.Sched.SetAlive(node, false)
	// Decentralized: confirm the death in gossip (the crash is known, not
	// suspected) so the event handler hands the victim's directory shard to
	// the surviving ring members before locations are scrubbed.
	rt.noteNodeDead(node)
	if store := rt.Layer.Store(node); store != nil {
		store.Clear()
	}
	rt.Layer.DropNode(node)
	rt.replaceActors(node)
	lost := rt.Head.Table.RemoveNodeLocations(node)

	var stillLost []idgen.ObjectID
	for _, id := range lost {
		if rt.opts.Recovery == RecoverCache && rt.Layer.Contains(id) {
			// The caching layer can still serve it (replica/EC/DSM);
			// repair the ownership record by re-reading through the layer.
			if rt.recoverFromCache(id) {
				continue
			}
		}
		stillLost = append(stillLost, id)
	}
	if rt.opts.Recovery == RecoverLineage && len(stillLost) > 0 {
		// KillNode has no caller context; the per-exec timeout inside
		// recoverByLineage still bounds the replay.
		if err := rt.recoverByLineage(context.Background(), stillLost); err == nil {
			return nil
		}
	}
	return stillLost
}

// recoverFromCache re-materializes a lost object onto the driver using the
// caching layer's redundancy and repairs its ownership record.
func (rt *Runtime) recoverFromCache(id idgen.ObjectID) bool {
	data, format, err := rt.Layer.Get(rt.driver, id)
	if err != nil {
		return false
	}
	if store := rt.Layer.Store(rt.driver); store != nil {
		_ = store.Put(id, data, format)
	}
	if err := rt.Head.Table.Reset(id); err != nil {
		return false
	}
	if _, err := rt.Head.Table.MarkReady(id, int64(len(data)), rt.driver, idgen.Nil, ""); err != nil {
		return false
	}
	return true
}

// recoveryExecTimeout caps a single recovery re-execution. Recovery must
// terminate even when the cluster is misbehaving: a replayed task whose
// argument resolution blocks on an ownership wait that will never fire
// (e.g. the argument's producer died mid-commit under chaos) would
// otherwise wedge recovery — and the Get behind it — forever.
const recoveryExecTimeout = 10 * time.Second

// recoverByLineage re-executes the producing tasks of the lost objects in
// dependency order. Recoveries are serialized: concurrent losses share one
// replay rather than racing to re-execute the same producers. The context
// bounds the whole replay; each exec is additionally capped by
// recoveryExecTimeout so one wedged task cannot hold the recovery lock
// indefinitely.
func (rt *Runtime) recoverByLineage(ctx context.Context, lost []idgen.ObjectID) error {
	rt.recoveryMu.Lock()
	defer rt.recoveryMu.Unlock()
	// available must verify a copy is actually fetchable, not just that the
	// record claims Ready: under concurrent failures a record can carry a
	// location whose store died after the last RemoveNodeLocations pass.
	available := func(id idgen.ObjectID) bool {
		rec, err := rt.Head.Table.Get(id)
		if err == nil && rec.State == ownership.Ready {
			for _, loc := range rec.Locations {
				n := rt.Cluster.Node(loc)
				if n == nil || !n.Alive() {
					continue
				}
				if st := rt.Layer.Store(loc); st != nil && st.Contains(id) {
					return true
				}
			}
		}
		return rt.Layer.Contains(id)
	}
	plan, err := rt.Head.Lineage.RecoveryPlan(lost, available)
	if err != nil {
		return err
	}
	for _, spec := range plan {
		// Never resurrect revoked work. Cancellation cascades to every
		// downstream consumer, so any dependent of a skipped producer is
		// itself cancelled (and skipped) — the plan stays consistent.
		if rt.revokedTask(spec) {
			continue
		}
		rt.Metrics.Counter(MetricLineageRecoveries).Inc()
		for _, ret := range spec.Returns {
			_ = rt.Head.Table.Reset(ret)
		}
		node, err := rt.Sched.Pick(spec)
		if err != nil {
			// The returns were just Reset to pending; record the typed
			// failure so they fail Lost-with-cause instead of leaking as
			// futures nobody will ever resolve.
			rt.failTask(spec, err)
			return err
		}
		ectx, cancel := context.WithTimeout(ctx, recoveryExecTimeout)
		err = rt.execOn(ectx, node, spec)
		cancel()
		rt.Sched.Finished(node)
		if err != nil {
			rt.failTask(spec, err)
			return err
		}
	}
	return nil
}

// revokedTask reports whether any of a task's returns carries a cancel or
// deadline failure.
func (rt *Runtime) revokedTask(spec *task.Spec) bool {
	for _, ret := range spec.Returns {
		if rt.terminalFailure(ret) {
			return true
		}
	}
	return false
}

// CancelReport summarizes what one Cancel call reclaimed.
type CancelReport struct {
	// TasksCancelled counts tasks in the cancelled graph (queued, running,
	// or already finished with reclaimable outputs).
	TasksCancelled int
	// WorkersReclaimed counts tasks whose exec RPC was in flight — a worker
	// slot freed before the kernel would have finished on its own.
	WorkersReclaimed int
	// BytesReclaimed sums the sizes of already-committed outputs freed.
	BytesReclaimed int64
}

// Cancel revokes the tasks producing the given objects and, cascading over
// lineage consumer edges, every queued or in-flight descendant. In-flight
// tasks are interrupted at the raylet's cancel checkpoints (the cancel rides
// the transport to the remote handler), futures fail with skaderr.Cancelled,
// blocked Get/Wait callers wake, and already-committed outputs of the doomed
// graph are freed from the caching layer.
func (rt *Runtime) Cancel(ids ...idgen.ObjectID) CancelReport {
	// Seed with the producers of the given objects, then BFS downstream:
	// every recorded consumer of a cancelled task's outputs is doomed too.
	seen := make(map[idgen.TaskID]bool)
	var frontier, doomed []*task.Spec
	for _, id := range ids {
		if spec, ok := rt.Head.Lineage.Producer(id); ok && !seen[spec.ID] {
			seen[spec.ID] = true
			frontier = append(frontier, spec)
		}
	}
	for len(frontier) > 0 {
		spec := frontier[0]
		frontier = frontier[1:]
		doomed = append(doomed, spec)
		for _, ret := range spec.Returns {
			for _, c := range rt.Head.Lineage.Consumers(ret) {
				if !seen[c.ID] {
					seen[c.ID] = true
					frontier = append(frontier, c)
				}
			}
		}
	}

	var rep CancelReport
	cancelErr := skaderr.New(skaderr.Cancelled, "runtime: cancelled")
	for _, spec := range doomed {
		rep.TasksCancelled++
		if ctl := rt.taskCtl(spec.ID); ctl != nil {
			if ctl.executing.Load() {
				rep.WorkersReclaimed++
			}
			ctl.cancel(cancelErr)
		}
		// Record the error BEFORE MarkLost wakes waiters, so a released Get
		// sees Cancelled rather than a bare loss.
		rt.mu.Lock()
		for _, ret := range spec.Returns {
			if _, exists := rt.errs[ret]; !exists {
				rt.errs[ret] = fmt.Errorf("task %s (%s): %w", spec.ID.Short(), spec.Fn, cancelErr)
			}
		}
		rt.mu.Unlock()
		for _, ret := range spec.Returns {
			if rec, err := rt.Head.Table.Get(ret); err == nil && rec.State == ownership.Ready {
				// Partial progress of the doomed graph: reclaim the bytes.
				rep.BytesReclaimed += rec.Size
				rt.Layer.Delete(ret)
			}
			_ = rt.Head.Table.MarkLost(ret)
		}
	}
	rt.Metrics.Counter(MetricTasksCancelled).Add(int64(rep.TasksCancelled))
	rt.Metrics.Counter(MetricWorkersReclaimed).Add(int64(rep.WorkersReclaimed))
	rt.Metrics.Counter(MetricBytesReclaimed).Add(rep.BytesReclaimed)
	return rep
}

// RestartNode brings a killed node back with empty state: the raylet
// daemon is rebuilt against a fresh (empty) object store registered with
// the caching layer, and the node becomes schedulable again.
func (rt *Runtime) RestartNode(node idgen.NodeID) {
	// Restarting a node that is already running must be a no-op: the
	// restart path swaps in an empty store, so applying it to a live node
	// would erase bytes committed since the last restart while the
	// ownership table keeps the now-dangling locations. (Generated chaos
	// plans can schedule overlapping crash/restart cycles for one node.)
	if n := rt.Cluster.Node(node); n == nil || n.Alive() {
		return
	}
	// Mirror of KillNode: journal the restart and re-register the fabric
	// endpoint at its pre-crash location.
	rt.chaosEng.RestoreNode(node)
	rt.Cluster.Restart(node)
	n := rt.Cluster.Node(node)
	if n == nil {
		return
	}
	rt.mu.Lock()
	old, hadRaylet := rt.raylets[node]
	cfg, hadCfg := rt.rayletCfg[node]
	rt.mu.Unlock()
	if hadRaylet && hadCfg {
		old.Stop()
		rt.mu.Lock()
		rt.retiredExecuted += old.Stats().TasksExecuted
		rt.mu.Unlock()
		rt.Layer.AddStore(node, tierFor(n.Kind), objectstore.New(n.Res.MemBytes, nil))
		if rl, err := raylet.New(cfg); err == nil {
			if err := rl.Start(); err == nil {
				rt.mu.Lock()
				rt.raylets[node] = rl
				rt.mu.Unlock()
			}
		}
	}
	rt.Sched.SetAlive(node, true)
	// Decentralized: rejoin gossip (bumping the incarnation refutes any
	// stale suspicion) and take a key range back from the ring.
	rt.noteNodeAlive(node)
}

// Free releases objects cluster-wide: every cached copy, replica, EC
// shard, and DSM entry is reclaimed, the ownership entries are deleted
// (pending waiters are released with a loss error), and lineage is
// forgotten. Freed objects cannot be recovered; free only consumed
// results and dead intermediates.
func (rt *Runtime) Free(ids ...idgen.ObjectID) {
	for _, id := range ids {
		rt.Head.Table.Delete(id)
		rt.Layer.Delete(id)
		rt.Head.Lineage.Forget(id)
		rt.mu.Lock()
		delete(rt.errs, id)
		rt.mu.Unlock()
	}
}

// FabricStats returns total fabric accounting, for experiment reporting.
func (rt *Runtime) FabricStats() fabric.Stats { return rt.Cluster.Fabric.TotalStats() }

// Shutdown drains in-flight tasks, releases every waiter still blocked on a
// never-to-be-produced object (with skaderr.Unavailable), and tears down the
// transport. No Get/Wait goroutine outlives it.
func (rt *Runtime) Shutdown() {
	rt.stopGossipPump()
	rt.Drain()
	// Record the cause before AbortPending wakes waiters: a released Get
	// must observe Unavailable, never a bare loss.
	rt.mu.Lock()
	for _, id := range rt.Head.Table.PendingIDs() {
		if _, ok := rt.errs[id]; !ok {
			rt.errs[id] = skaderr.New(skaderr.Unavailable,
				"runtime: shutdown before object %s was produced", id.Short())
		}
	}
	rt.mu.Unlock()
	rt.Head.Table.AbortPending()
	_ = rt.Cluster.Transport.Close()
}
