package runtime

import (
	"context"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"skadi/internal/caching"
	"skadi/internal/chaos"
	"skadi/internal/gossip"
	"skadi/internal/idgen"
	"skadi/internal/skaderr"
	"skadi/internal/task"
	"skadi/internal/tenancy"
)

func ringHas(members []idgen.NodeID, n idgen.NodeID) bool {
	for _, m := range members {
		if m == n {
			return true
		}
	}
	return false
}

// TestDecentralizedEndToEnd: the full task API runs unchanged on the
// distributed control plane — sharded directory, work-stealing mesh, gossip
// liveness — and the control-plane sample is coherent at quiesce.
func TestDecentralizedEndToEnd(t *testing.T) {
	rt, err := New(ClusterSpec{
		Servers: 4, ServerSlots: 2, ServerMemBytes: 64 << 20,
	}, Options{Decentralized: true, Recovery: RecoverLineage})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if !rt.Decentralized() {
		t.Fatal("Decentralized() = false")
	}
	// Ring membership: the head (permanent member) plus every worker.
	members := rt.sharded.Members()
	if len(members) != 5 {
		t.Fatalf("ring members = %d, want 5", len(members))
	}
	if !ringHas(members, rt.Driver()) {
		t.Fatal("head missing from the ring")
	}

	registerSquareAgg(rt, 0)
	aggRefs, _, want := submitFanOutFanIn(rt, 8, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for a, ref := range aggRefs {
		data, err := rt.Get(ctx, ref)
		if err != nil {
			t.Fatalf("agg %d: %v", a, err)
		}
		if got, _ := strconv.Atoi(string(data)); got != want[a] {
			t.Fatalf("agg %d = %q, want %d", a, data, want[a])
		}
	}
	rt.Drain()

	s := rt.SampleControlPlane()
	if !s.Decentralized || s.Alive != 5 || s.Suspect != 0 || s.Dead != 0 {
		t.Fatalf("sample = %+v, want 5 alive members", s)
	}
	total := 0
	for _, n := range s.ShardEntries {
		total += n
	}
	if total != rt.Head.Table.Len() {
		t.Fatalf("shard sizes sum to %d, directory holds %d", total, rt.Head.Table.Len())
	}
}

// TestDecentralizedCrashHandsOffShard: killing a ring member moves its
// directory shard to the survivors with nothing lost, and a restart takes a
// key range back.
func TestDecentralizedCrashHandsOffShard(t *testing.T) {
	rt, err := New(ClusterSpec{
		Servers: 4, ServerSlots: 2, ServerMemBytes: 64 << 20,
	}, Options{Decentralized: true, Recovery: RecoverLineage})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	registerSquareAgg(rt, 0)
	aggRefs, _, want := submitFanOutFanIn(rt, 12, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, ref := range aggRefs {
		if _, err := rt.Get(ctx, ref); err != nil {
			t.Fatal(err)
		}
	}
	rt.Drain()
	recordsBefore := len(rt.Head.Table.Records())

	victim := rt.workerServers()[0]
	if !ringHas(rt.sharded.Members(), victim) {
		t.Fatalf("victim %s not a ring member", victim.Short())
	}
	rt.KillNode(victim)
	if ringHas(rt.sharded.Members(), victim) {
		t.Fatal("dead node still owns a shard")
	}
	if st, _, ok := rt.gossip.Status(victim); !ok || st != gossip.Dead {
		t.Fatalf("gossip status = %v, %v; want dead", st, ok)
	}
	// The handoff must not drop entries: every record survives on the
	// remaining shards (locations shrink, the directory does not).
	if got := len(rt.Head.Table.Records()); got != recordsBefore {
		t.Fatalf("records after handoff = %d, want %d", got, recordsBefore)
	}
	// Results remain fetchable through lineage recovery + rerouted lookups.
	for a, ref := range aggRefs {
		data, err := rt.Get(ctx, ref)
		if err != nil {
			t.Fatalf("agg %d after crash: %v", a, err)
		}
		if got, _ := strconv.Atoi(string(data)); got != want[a] {
			t.Fatalf("agg %d after crash = %q, want %d", a, data, want[a])
		}
	}

	rt.RestartNode(victim)
	if !ringHas(rt.sharded.Members(), victim) {
		t.Fatal("restarted node did not rejoin the ring")
	}
	if st, _, ok := rt.gossip.Status(victim); !ok || st != gossip.Alive {
		t.Fatalf("gossip status after restart = %v, %v; want alive", st, ok)
	}
}

// TestDecentralizedGossipConvictsPartitioned: a silent partition — no
// KillNode call — is detected by the background protocol (here stepped
// manually for determinism), the victim loses its shard and its place in
// the scheduler, and the heal path brings it back via refutation.
func TestDecentralizedGossipConvictsPartitioned(t *testing.T) {
	rt, err := New(ClusterSpec{
		Servers: 3, ServerSlots: 2, ServerMemBytes: 64 << 20,
	}, Options{Decentralized: true, GossipInterval: time.Hour}) // manual ticks only
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	victim := rt.workerServers()[0]
	rt.Chaos().Partition([]idgen.NodeID{victim})
	// One tick to suspect, SuspectTicks more to convict.
	rt.StepGossip(8)
	if ringHas(rt.sharded.Members(), victim) {
		t.Fatal("partitioned node still owns a shard after conviction")
	}
	if st, _, _ := rt.gossip.Status(victim); st != gossip.Dead {
		t.Fatalf("gossip status = %v, want dead", st)
	}
	s := rt.SampleControlPlane()
	if s.Dead != 1 {
		t.Fatalf("sample dead = %d, want 1", s.Dead)
	}

	// Heal: the node never actually died, so it refutes and rejoins.
	rt.Chaos().HealPartition()
	rt.HealChaos()
	if !ringHas(rt.sharded.Members(), victim) {
		t.Fatal("healed node did not rejoin the ring")
	}
	if st, inc, _ := rt.gossip.Status(victim); st != gossip.Alive || inc == 0 {
		t.Fatalf("gossip status = %v inc=%d, want alive with bumped incarnation", st, inc)
	}
	// Steady state: further ticks must not re-convict anyone.
	rt.StepGossip(8)
	if s := rt.SampleControlPlane(); s.Dead != 0 || s.Suspect != 0 {
		t.Fatalf("post-heal sample = %+v, want all alive", s)
	}
}

// TestDecentralizedHandoffRacesCrash: two ring members crash and restart
// concurrently while the DAG is in flight — shard handoff triggered by one
// crash races the other crash and both rejoin handoffs. Every future must
// still resolve and every invariant hold.
func TestDecentralizedHandoffRacesCrash(t *testing.T) {
	// GossipInterval an hour: KillNode/RestartNode drive gossip
	// synchronously and StepGossip settles the rest, so nothing in this
	// test races the background pump on the wall clock.
	rt, err := New(ClusterSpec{
		Servers: 5, ServerSlots: 2, ServerMemBytes: 64 << 20,
	}, Options{Decentralized: true, Recovery: RecoverLineage, TimeScale: 1.0,
		GossipInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	registerSquareAgg(rt, 200*time.Microsecond)
	checker := rt.ChaosChecker()

	aggRefs, _, want := submitFanOutFanIn(rt, 12, 3)
	workers := rt.workerServers()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(victim idgen.NodeID) {
			defer wg.Done()
			rt.KillNode(victim)
			rt.RestartNode(victim)
		}(workers[i])
	}
	wg.Wait()
	rt.HealChaos()
	rt.StepGossip(8)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for a, ref := range aggRefs {
		data, err := rt.Get(ctx, ref)
		if err != nil {
			if skaderr.CodeOf(err) == skaderr.OK {
				t.Fatalf("agg %d failed untyped: %v", a, err)
			}
			continue
		}
		if got, _ := strconv.Atoi(string(data)); got != want[a] {
			t.Fatalf("agg %d = %q, want %d", a, data, want[a])
		}
	}
	rt.Drain()
	for i := 0; i < 2; i++ {
		if !ringHas(rt.sharded.Members(), workers[i]) {
			t.Fatalf("victim %d missing from the ring after restart", i)
		}
	}
	if vs := checker.Check(); len(vs) != 0 {
		t.Fatalf("%d invariant violation(s): %v", len(vs), vs)
	}
}

// TestDecentralizedDecommission: a graceful drain leaves gossip and the
// ring permanently — no refutation resurrects a decommissioned node.
func TestDecentralizedDecommission(t *testing.T) {
	rt, err := New(ClusterSpec{
		Servers: 3, ServerSlots: 2, ServerMemBytes: 64 << 20,
	}, Options{Decentralized: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	victim := rt.workerServers()[0]
	if _, err := rt.Decommission(context.Background(), victim); err != nil {
		t.Fatal(err)
	}
	if ringHas(rt.sharded.Members(), victim) {
		t.Fatal("decommissioned node still owns a shard")
	}
	if _, _, ok := rt.gossip.Status(victim); ok {
		t.Fatal("decommissioned node still a gossip member")
	}
	// Further protocol rounds must not resurrect it.
	rt.StepGossip(4)
	if ringHas(rt.sharded.Members(), victim) {
		t.Fatal("gossip resurrected a decommissioned node")
	}
}

// runDecentralChaosEpisode is the sharded-directory version of the chaos
// property episode, with the tenancy plane armed so I6 (per-tenant
// accounting) is checked alongside I2 (ownership residency) against shard
// handoffs racing the generated crash/partition schedule.
func runDecentralChaosEpisode(t *testing.T, seed int64) {
	rt, err := New(ClusterSpec{
		Servers: 4, ServerSlots: 2, ServerMemBytes: 64 << 20,
	}, Options{
		Decentralized: true,
		Recovery:      RecoverLineage, TimeScale: 1.0,
		Tenancy: tenancy.Options{FairShare: true, Preemption: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if err := rt.RegisterTenant(tenancy.Config{Name: "blue", Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterTenant(tenancy.Config{Name: "green"}); err != nil {
		t.Fatal(err)
	}
	registerSquareAgg(rt, 300*time.Microsecond)
	checker := rt.ChaosChecker()

	_, faultable := rt.ChaosNodes()
	plan := chaos.Generate(seed, chaos.GenConfig{
		Faultable: faultable,
		Window:    3 * time.Millisecond,
		Mix:       chaos.Mix(uint64(seed) % 4),
	})

	const leaves, aggs = 8, 2
	tenantOf := func(i int) string {
		if i%2 == 0 {
			return "blue"
		}
		return "green"
	}
	want := make([]int, aggs)
	leafRefs := make([]idgen.ObjectID, leaves)
	for i := 0; i < leaves; i++ {
		lctx := tenancy.ContextWith(context.Background(), tenantOf(i))
		spec := task.NewSpec(rt.Job(), "leaf", []task.Arg{task.ValueArg([]byte(strconv.Itoa(i)))}, 1)
		leafRefs[i] = rt.SubmitCtx(lctx, spec)[0]
		want[i%aggs] += i * i
	}
	aggRefs := make([]idgen.ObjectID, aggs)
	for a := 0; a < aggs; a++ {
		var args []task.Arg
		for i := a; i < leaves; i += aggs {
			args = append(args, task.RefArg(leafRefs[i]))
		}
		actx := tenancy.ContextWith(context.Background(), tenantOf(a))
		aggRefs[a] = rt.SubmitCtx(actx, task.NewSpec(rt.Job(), "agg", args, 1))[0]
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rt.RunPlan(ctx, plan)

	for a, ref := range aggRefs {
		data, err := rt.Get(ctx, ref)
		if err != nil {
			if skaderr.CodeOf(err) == skaderr.OK {
				failEpisode(t, rt, seed, "episode seed=%d: agg %d failed untyped: %v", seed, a, err)
			}
			continue
		}
		if got, _ := strconv.Atoi(string(data)); got != want[a] {
			failEpisode(t, rt, seed, "episode seed=%d: agg %d = %q, want %d", seed, a, data, want[a])
		}
	}
	rt.Drain()

	if vs := checker.Check(); len(vs) != 0 {
		failEpisode(t, rt, seed, "episode seed=%d: %d invariant violation(s): %v", seed, len(vs), vs)
	}
	// Quiesce sanity specific to this plane: shard sizes must cover the
	// whole directory (no entry stranded by a handoff).
	s := rt.SampleControlPlane()
	total := 0
	for _, n := range s.ShardEntries {
		total += n
	}
	if total != rt.Head.Table.Len() {
		failEpisode(t, rt, seed, "episode seed=%d: shards hold %d entries, directory %d",
			seed, total, rt.Head.Table.Len())
	}
}

// TestChaosPropertyDecentralized is the randomized chaos suite against the
// decentralized control plane: seeded fault plans (crashes, restarts,
// partitions, message chaos) over a two-tenant DAG, with shard handoff and
// gossip conviction happening mid-episode, all six invariants checked at
// quiesce. Uses the same seed space and replay recipe as TestChaosProperty.
func TestChaosPropertyDecentralized(t *testing.T) {
	base := chaos.FlagSeed()
	for ep := 0; ep < chaosEpisodes(); ep++ {
		seed := base + int64(ep)
		runDecentralChaosEpisode(t, seed)
		if t.Failed() {
			return
		}
	}
}

// runDurabilityChaosEpisode is the metadata-durability chaos schedule: a
// replicated data plane (three copies per object) under a decentralized
// control plane with replicated shard metadata, with a seeded shard
// primary crashed mid-handoff — while the DAG is in flight — followed by
// its ring successor, the very node whose replica was just promoted. With
// at most two crashes and three data copies, a copy always survives, so
// I7's strongest form holds: zero lost directory entries, zero replica
// divergence, and zero lineage-replay recoveries.
func runDurabilityChaosEpisode(t *testing.T, seed int64) {
	rt, err := New(ClusterSpec{
		Servers: 5, ServerSlots: 2, ServerMemBytes: 64 << 20,
	}, Options{
		Decentralized:  true,
		GossipInterval: time.Hour, // stepped manually: no pump race
		Recovery:       RecoverLineage, TimeScale: 1.0,
		Caching: caching.Config{Mode: caching.ModeReplicate, Replicas: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	registerSquareAgg(rt, 300*time.Microsecond)
	checker := rt.ChaosChecker()

	// Seeded victim pair: a shard primary and its ring successor (the
	// replica host that promotion just made the new primary). The head is
	// a permanent member and never a victim.
	rng := rand.New(rand.NewSource(seed))
	workers := rt.workerServers()
	primary := workers[rng.Intn(len(workers))]
	succ, ok := rt.sharded.Successor(primary)
	if !ok {
		t.Fatalf("no ring successor for %s", primary.Short())
	}

	aggRefs, _, want := submitFanOutFanIn(rt, 8+rng.Intn(5), 2)

	// Crash the primary mid-handoff: the DAG is in flight, so directory
	// ops race the promotion. Then crash the successor — if it was a
	// worker — hitting the just-promoted shard before it fully re-settles.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rt.KillNode(primary)
		if succ != rt.Driver() {
			rt.KillNode(succ)
		}
	}()
	wg.Wait()
	rt.RestartNode(primary)
	if succ != rt.Driver() {
		rt.RestartNode(succ)
	}
	rt.HealChaos()
	rt.StepGossip(8)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for a, ref := range aggRefs {
		data, err := rt.Get(ctx, ref)
		if err != nil {
			// Three data copies and at most two crashes: every future must
			// resolve with the right bytes, not merely fail typed.
			failEpisode(t, rt, seed, "episode seed=%d: agg %d: %v", seed, a, err)
			continue
		}
		if got, _ := strconv.Atoi(string(data)); got != want[a] {
			failEpisode(t, rt, seed, "episode seed=%d: agg %d = %q, want %d", seed, a, data, want[a])
		}
	}
	rt.Drain()

	if vs := checker.Check(); len(vs) != 0 {
		failEpisode(t, rt, seed, "episode seed=%d: %d invariant violation(s): %v", seed, len(vs), vs)
	}
	// I7's evidence, asserted directly as well so a weakening of the
	// checker cannot silently pass: promotions happened, nothing was lost,
	// and lineage replay never fired.
	st := rt.sharded.ReplicationStats()
	if st.Promotions == 0 {
		failEpisode(t, rt, seed, "episode seed=%d: no promotions recorded (schedule did not exercise the replica path)", seed)
	}
	if st.Lost != 0 {
		failEpisode(t, rt, seed, "episode seed=%d: %d directory entries lost (restored %d)", seed, st.Lost, st.Restored)
	}
	if n := rt.Metrics.Counter(MetricLineageRecoveries).Value(); n != 0 {
		failEpisode(t, rt, seed, "episode seed=%d: %d lineage replays despite replicated metadata", seed, n)
	}
}

// TestChaosPropertyDurability runs the metadata-durability schedule over
// the seeded episode space: crash a shard primary mid-handoff (then its
// promoted successor), and require zero lost directory entries, zero
// replica divergence, and zero lineage-replay fallbacks every time.
func TestChaosPropertyDurability(t *testing.T) {
	base := chaos.FlagSeed()
	for ep := 0; ep < chaosEpisodes(); ep++ {
		seed := base + int64(ep)
		runDurabilityChaosEpisode(t, seed)
		if t.Failed() {
			return
		}
	}
}
