package runtime

import (
	"fmt"
	"sync/atomic"
	"time"

	"skadi/internal/cluster"
	"skadi/internal/idgen"
	"skadi/internal/scheduler"
)

// cordonRecord remembers why and how a node was cordoned, so later policy
// (ScaleUp reuse, Decommission) can act on it without re-deriving state.
type cordonRecord struct {
	// slots is the worker count to restore on un-cordon.
	slots int
	// drainEligible marks the node safe to fully decommission: it was idle
	// when cordoned, so only resident data (no running work) holds it.
	drainEligible bool
}

// autoscaleState tracks the elastic worker fleet.
type autoscaleState struct {
	pending atomic.Int64
	// cordoned servers are withdrawn from scheduling but still serve
	// reads of the objects they hold (graceful scale-down). The map gives
	// O(1) membership checks (isCordoned sits on the scheduling hot path
	// via ActiveWorkers); cordonOrder preserves LIFO reuse so ScaleUp
	// brings back the most recently parked node first.
	cordoned    map[idgen.NodeID]*cordonRecord
	cordonOrder []idgen.NodeID
	grown       int
}

// Pending returns the number of submitted-but-unfinished tasks — the
// autoscaler's load signal.
func (rt *Runtime) Pending() int { return int(rt.autoscale.pending.Load()) }

// workerServers returns the schedulable CPU worker nodes.
func (rt *Runtime) workerServers() []idgen.NodeID {
	nodes := rt.Cluster.NodesByKind(cluster.Server)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []idgen.NodeID
	for _, n := range nodes {
		if n.ID == rt.driver || !n.Alive() {
			continue
		}
		if _, ok := rt.raylets[n.ID]; ok {
			out = append(out, n.ID)
		}
	}
	return out
}

// ScaleUp adds one worker server to the fleet: an un-cordoned standby if
// available, otherwise a freshly provisioned node with its own raylet —
// the pay-as-you-go half of the serverless principle.
func (rt *Runtime) ScaleUp(slots int, memBytes int64) (idgen.NodeID, error) {
	rt.mu.Lock()
	if n := len(rt.autoscale.cordonOrder); n > 0 {
		node := rt.autoscale.cordonOrder[n-1]
		rt.autoscale.cordonOrder = rt.autoscale.cordonOrder[:n-1]
		delete(rt.autoscale.cordoned, node)
		hasRaylet := rt.raylets[node] != nil // raylet kept running while cordoned
		rt.mu.Unlock()
		if hasRaylet {
			rt.Sched.AddNode(scheduler.NodeInfo{ID: node, Backend: "cpu", Slots: slots})
			return node, nil
		}
		return idgen.Nil, fmt.Errorf("runtime: cordoned node %s has no raylet", node.Short())
	}
	rt.autoscale.grown++
	name := fmt.Sprintf("auto-%d", rt.autoscale.grown)
	rt.mu.Unlock()

	node := rt.Cluster.AddServer(name, 0, slots, memBytes)
	if err := rt.addRaylet(node, "cpu", slots, idgen.Nil); err != nil {
		return idgen.Nil, err
	}
	return node.ID, nil
}

// ScaleDown cordons one idle worker: it stops receiving tasks but keeps
// serving its resident objects, so no data movement or loss occurs.
// Returns false if no worker is idle.
func (rt *Runtime) ScaleDown() (idgen.NodeID, bool) {
	for _, node := range rt.workerServers() {
		if rt.Sched.Inflight(node) != 0 {
			continue
		}
		if rt.isCordoned(node) {
			continue
		}
		rt.Sched.RemoveNode(node)
		rt.mu.Lock()
		if rt.autoscale.cordoned == nil {
			rt.autoscale.cordoned = make(map[idgen.NodeID]*cordonRecord)
		}
		// The node was verified idle above, so it is immediately eligible
		// for a full decommission (drain + stop) should policy want the
		// capacity gone rather than parked.
		rt.autoscale.cordoned[node] = &cordonRecord{slots: rt.rayletCfg[node].Slots, drainEligible: true}
		rt.autoscale.cordonOrder = append(rt.autoscale.cordonOrder, node)
		rt.mu.Unlock()
		return node, true
	}
	return idgen.Nil, false
}

func (rt *Runtime) isCordoned(node idgen.NodeID) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	_, ok := rt.autoscale.cordoned[node]
	return ok
}

// DrainCandidates returns the cordoned nodes eligible for a full
// decommission, in cordon order.
func (rt *Runtime) DrainCandidates() []idgen.NodeID {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []idgen.NodeID
	for _, node := range rt.autoscale.cordonOrder {
		if rec, ok := rt.autoscale.cordoned[node]; ok && rec.drainEligible {
			out = append(out, node)
		}
	}
	return out
}

// uncordon removes a node from the cordon set (used by Decommission once
// the node is gone for good).
func (rt *Runtime) uncordon(node idgen.NodeID) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.autoscale.cordoned[node]; !ok {
		return
	}
	delete(rt.autoscale.cordoned, node)
	for i, n := range rt.autoscale.cordonOrder {
		if n == node {
			rt.autoscale.cordonOrder = append(rt.autoscale.cordonOrder[:i], rt.autoscale.cordonOrder[i+1:]...)
			break
		}
	}
}

// ActiveWorkers returns the number of schedulable worker servers.
func (rt *Runtime) ActiveWorkers() int {
	n := 0
	for _, node := range rt.workerServers() {
		if !rt.isCordoned(node) {
			n++
		}
	}
	return n
}

// EnableAutoscaler runs a scaling loop: every interval it feeds the
// pending-task count and active fleet size to the policy and applies the
// decision. Returns a stop function; the loop also stops at Shutdown.
func (rt *Runtime) EnableAutoscaler(cfg scheduler.AutoscalerConfig, interval time.Duration, slots int, memBytes int64) (stop func()) {
	auto := scheduler.NewAutoscaler(cfg)
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				switch auto.Observe(rt.Pending(), rt.ActiveWorkers()) {
				case scheduler.ScaleUp:
					_, _ = rt.ScaleUp(slots, memBytes)
				case scheduler.ScaleDown:
					_, _ = rt.ScaleDown()
				}
			}
		}
	}()
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			close(done)
		}
	}
}
