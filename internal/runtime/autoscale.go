package runtime

import (
	"fmt"
	"sync/atomic"
	"time"

	"skadi/internal/cluster"
	"skadi/internal/idgen"
	"skadi/internal/scheduler"
)

// autoscaleState tracks the elastic worker fleet.
type autoscaleState struct {
	pending atomic.Int64
	// cordoned servers are withdrawn from scheduling but still serve
	// reads of the objects they hold (graceful scale-down).
	cordoned []idgen.NodeID
	grown    int
}

// Pending returns the number of submitted-but-unfinished tasks — the
// autoscaler's load signal.
func (rt *Runtime) Pending() int { return int(rt.autoscale.pending.Load()) }

// workerServers returns the schedulable CPU worker nodes.
func (rt *Runtime) workerServers() []idgen.NodeID {
	nodes := rt.Cluster.NodesByKind(cluster.Server)
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var out []idgen.NodeID
	for _, n := range nodes {
		if n.ID == rt.driver || !n.Alive() {
			continue
		}
		if _, ok := rt.raylets[n.ID]; ok {
			out = append(out, n.ID)
		}
	}
	return out
}

// ScaleUp adds one worker server to the fleet: an un-cordoned standby if
// available, otherwise a freshly provisioned node with its own raylet —
// the pay-as-you-go half of the serverless principle.
func (rt *Runtime) ScaleUp(slots int, memBytes int64) (idgen.NodeID, error) {
	rt.mu.Lock()
	if n := len(rt.autoscale.cordoned); n > 0 {
		node := rt.autoscale.cordoned[n-1]
		rt.autoscale.cordoned = rt.autoscale.cordoned[:n-1]
		hasRaylet := rt.raylets[node] != nil // raylet kept running while cordoned
		rt.mu.Unlock()
		if hasRaylet {
			rt.Sched.AddNode(scheduler.NodeInfo{ID: node, Backend: "cpu", Slots: slots})
			return node, nil
		}
		return idgen.Nil, fmt.Errorf("runtime: cordoned node %s has no raylet", node.Short())
	}
	rt.autoscale.grown++
	name := fmt.Sprintf("auto-%d", rt.autoscale.grown)
	rt.mu.Unlock()

	node := rt.Cluster.AddServer(name, 0, slots, memBytes)
	if err := rt.addRaylet(node, "cpu", slots, idgen.Nil); err != nil {
		return idgen.Nil, err
	}
	return node.ID, nil
}

// ScaleDown cordons one idle worker: it stops receiving tasks but keeps
// serving its resident objects, so no data movement or loss occurs.
// Returns false if no worker is idle.
func (rt *Runtime) ScaleDown() (idgen.NodeID, bool) {
	for _, node := range rt.workerServers() {
		if rt.Sched.Inflight(node) != 0 {
			continue
		}
		if rt.isCordoned(node) {
			continue
		}
		rt.Sched.RemoveNode(node)
		rt.mu.Lock()
		rt.autoscale.cordoned = append(rt.autoscale.cordoned, node)
		rt.mu.Unlock()
		return node, true
	}
	return idgen.Nil, false
}

func (rt *Runtime) isCordoned(node idgen.NodeID) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, c := range rt.autoscale.cordoned {
		if c == node {
			return true
		}
	}
	return false
}

// ActiveWorkers returns the number of schedulable worker servers.
func (rt *Runtime) ActiveWorkers() int {
	n := 0
	for _, node := range rt.workerServers() {
		if !rt.isCordoned(node) {
			n++
		}
	}
	return n
}

// EnableAutoscaler runs a scaling loop: every interval it feeds the
// pending-task count and active fleet size to the policy and applies the
// decision. Returns a stop function; the loop also stops at Shutdown.
func (rt *Runtime) EnableAutoscaler(cfg scheduler.AutoscalerConfig, interval time.Duration, slots int, memBytes int64) (stop func()) {
	auto := scheduler.NewAutoscaler(cfg)
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				switch auto.Observe(rt.Pending(), rt.ActiveWorkers()) {
				case scheduler.ScaleUp:
					_, _ = rt.ScaleUp(slots, memBytes)
				case scheduler.ScaleDown:
					_, _ = rt.ScaleDown()
				}
			}
		}
	}()
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			close(done)
		}
	}
}
