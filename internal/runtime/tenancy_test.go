package runtime

import (
	"context"
	goruntime "runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skadi/internal/chaos"
	"skadi/internal/idgen"
	"skadi/internal/skaderr"
	"skadi/internal/task"
	"skadi/internal/tenancy"
)

// tenantRuntime boots a small cluster with the multi-tenant control plane
// armed: fair-share scheduling plus (optionally) preemption.
func tenantRuntime(t *testing.T, servers, slots int, preempt bool) *Runtime {
	t.Helper()
	rt, err := New(ClusterSpec{
		Servers: servers, ServerSlots: slots, ServerMemBytes: 64 << 20,
	}, Options{Tenancy: tenancy.Options{FairShare: true, Preemption: preempt}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

// waitTenantQueued polls until the tenant's pending-queue depth reaches
// want — submits conclude asynchronously, so tests synchronize on the
// accounting snapshot rather than sleeping.
func waitTenantQueued(t *testing.T, rt *Runtime, tenant string, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for rt.Tenancy.Account(tenant).Queued != want {
		if time.Now().After(deadline) {
			t.Fatalf("tenant %q queued = %d, want %d (timed out)",
				tenant, rt.Tenancy.Account(tenant).Queued, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTenantAdmissionRejectsTyped drives the bounded pending queue end to
// end: with every worker slot held and the queue full, one more submit
// fails its future fast with a typed skaderr.ResourceExhausted — no
// dispatch machinery spins up for it, and the queued work still completes.
func TestTenantAdmissionRejectsTyped(t *testing.T) {
	rt := tenantRuntime(t, 1, 2, false)
	if err := rt.RegisterTenant(tenancy.Config{Name: "ant"}); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	registerBlockerCount(rt, "block", 2, started, release)
	ctx := tenancy.ContextWith(context.Background(), "ant")

	var held []idgen.ObjectID
	for i := 0; i < 2; i++ {
		held = append(held, rt.SubmitCtx(ctx, task.NewSpec(rt.Job(), "block", nil, 1))...)
	}
	<-started

	// Third submit takes a pending-queue seat and parks at the fair-share
	// slot gate; only then is the queue bound tightened to 1, so the slot
	// handoff of the first two submits never races the bound.
	queued := rt.SubmitCtx(ctx, task.NewSpec(rt.Job(), "block", nil, 1))
	waitTenantQueued(t, rt, "ant", 1)
	if err := rt.RegisterTenant(tenancy.Config{Name: "ant", MaxPending: 1}); err != nil {
		t.Fatal(err)
	}

	// Fourth overflows the bounded queue: typed fail-fast rejection.
	rejected := rt.SubmitCtx(ctx, task.NewSpec(rt.Job(), "block", nil, 1))
	gctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := rt.Get(gctx, rejected[0]); skaderr.CodeOf(err) != skaderr.ResourceExhausted {
		t.Fatalf("over-queue Get = %v, want skaderr.ResourceExhausted", err)
	}

	// The rejection cost the queued work nothing: everything admitted runs.
	close(release)
	for i, ref := range append(held, queued...) {
		if data, err := rt.Get(gctx, ref); err != nil || string(data) != "done" {
			t.Fatalf("admitted task %d = %q, %v", i, data, err)
		}
	}
	rt.Drain()
	a := rt.Tenancy.Account("ant")
	if a.Submitted != 4 || a.Admitted != 3 || a.Rejected != 1 || a.Completed != 3 {
		t.Errorf("account = %+v, want 4 submitted / 3 admitted / 1 rejected / 3 completed", a)
	}
}

// TestTenantBackpressureBlocksSubmit: with WithBlock the same over-queue
// submit parks instead of rejecting, and completes once capacity frees.
func TestTenantBackpressureBlocksSubmit(t *testing.T) {
	rt := tenantRuntime(t, 1, 2, false)
	if err := rt.RegisterTenant(tenancy.Config{Name: "bp"}); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	registerBlockerCount(rt, "block", 2, started, release)
	ctx := tenancy.ContextWith(context.Background(), "bp")

	var held []idgen.ObjectID
	for i := 0; i < 2; i++ {
		held = append(held, rt.SubmitCtx(ctx, task.NewSpec(rt.Job(), "block", nil, 1))...)
	}
	<-started
	queued := rt.SubmitCtx(ctx, task.NewSpec(rt.Job(), "block", nil, 1))
	waitTenantQueued(t, rt, "bp", 1)
	if err := rt.RegisterTenant(tenancy.Config{Name: "bp", MaxPending: 1}); err != nil {
		t.Fatal(err)
	}

	// This submit finds the queue full and blocks inside SubmitCtx.
	submitted := make(chan []idgen.ObjectID, 1)
	go func() {
		submitted <- rt.SubmitCtx(tenancy.WithBlock(ctx, true),
			task.NewSpec(rt.Job(), "block", nil, 1))
	}()
	select {
	case <-submitted:
		t.Fatal("blocking submit returned with the queue still full")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	var last []idgen.ObjectID
	select {
	case last = <-submitted:
	case <-time.After(10 * time.Second):
		t.Fatal("blocking submit never unblocked after capacity freed")
	}
	gctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, ref := range append(append(held, queued...), last...) {
		if data, err := rt.Get(gctx, ref); err != nil || string(data) != "done" {
			t.Fatalf("task %d = %q, %v", i, data, err)
		}
	}
}

// TestTenantPreemptionVictimRunsAntagonistReplays is the tentpole's
// end-to-end isolation story: a low-band tenant holds every slot; a
// high-band submit revokes one running task (typed skaderr.Preempted
// cancellation), runs immediately, and the revoked task replays through
// the fair queue and completes — preemption is a reschedule, not a loss.
func TestTenantPreemptionVictimRunsAntagonistReplays(t *testing.T) {
	rt := tenantRuntime(t, 1, 2, true)
	if err := rt.RegisterTenant(tenancy.Config{Name: "hog"}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterTenant(tenancy.Config{Name: "vip", Priority: 1}); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	registerBlockerCount(rt, "block", 2, started, release)
	rt.Registry.Register("quick", func(_ *task.Context, args [][]byte) ([][]byte, error) {
		return [][]byte{args[0]}, nil
	})

	hogCtx := tenancy.ContextWith(context.Background(), "hog")
	var hogRefs []idgen.ObjectID
	for i := 0; i < 2; i++ {
		hogRefs = append(hogRefs, rt.SubmitCtx(hogCtx, task.NewSpec(rt.Job(), "block", nil, 1))...)
	}
	<-started // both slots provably occupied by the hog

	vipCtx := tenancy.ContextWith(context.Background(), "vip")
	vipRef := rt.SubmitCtx(vipCtx, task.NewSpec(rt.Job(), "quick",
		[]task.Arg{task.ValueArg([]byte("hi"))}, 1))

	// The victim's Get must complete while the hog's release is still
	// closed off — only preemption can free a slot for it.
	gctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if data, err := rt.Get(gctx, vipRef[0]); err != nil || string(data) != "hi" {
		t.Fatalf("vip Get = %q, %v (preemption never freed a slot)", data, err)
	}
	if got := rt.Tenancy.Account("hog").Preempted; got == 0 {
		t.Error("hog.Preempted = 0, want at least one revocation")
	}

	// The preempted hog task replays and completes once released.
	close(release)
	for i, ref := range hogRefs {
		if data, err := rt.Get(gctx, ref); err != nil || string(data) != "done" {
			t.Fatalf("hog task %d = %q, %v (preempted task lost, not replayed)", i, data, err)
		}
	}
	rt.Drain()
	if a := rt.Tenancy.Account("hog"); a.Completed != 2 || a.Failed != 0 {
		t.Errorf("hog account = %+v, want 2 completed / 0 failed", a)
	}
}

// TestTenantWorkerQuotaBoundsConcurrency: MaxWorkers caps a tenant's
// concurrent slot occupancy even with idle capacity everywhere else.
func TestTenantWorkerQuotaBoundsConcurrency(t *testing.T) {
	rt := tenantRuntime(t, 2, 2, false)
	if err := rt.RegisterTenant(tenancy.Config{Name: "capped", MaxWorkers: 1}); err != nil {
		t.Fatal(err)
	}
	var cur, peak atomic.Int64
	rt.Registry.Register("hold", func(_ *task.Context, _ [][]byte) ([][]byte, error) {
		n := cur.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		cur.Add(-1)
		return [][]byte{[]byte("ok")}, nil
	})
	ctx := tenancy.ContextWith(context.Background(), "capped")
	var refs []idgen.ObjectID
	for i := 0; i < 4; i++ {
		refs = append(refs, rt.SubmitCtx(ctx, task.NewSpec(rt.Job(), "hold", nil, 1))...)
	}
	gctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, ref := range refs {
		if _, err := rt.Get(gctx, ref); err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
	}
	if got := peak.Load(); got != 1 {
		t.Errorf("peak concurrency = %d, want 1 (MaxWorkers quota leaked)", got)
	}
}

// registerBlob installs a kernel that returns a payload of the requested
// size, for driving the cache-byte quota through the real commit path.
func registerBlob(rt *Runtime) {
	rt.Registry.Register("blob", func(_ *task.Context, args [][]byte) ([][]byte, error) {
		n, err := strconv.Atoi(string(args[0]))
		if err != nil {
			return nil, err
		}
		return [][]byte{make([]byte, n)}, nil
	})
}

// TestTenantCacheQuotaRejectsPut: a result that would blow the tenant's
// cache-byte quota fails its commit — and therefore its future — with a
// typed skaderr.ResourceExhausted.
func TestTenantCacheQuotaRejectsPut(t *testing.T) {
	rt := tenantRuntime(t, 1, 2, false)
	if err := rt.RegisterTenant(tenancy.Config{Name: "pack", MaxCacheBytes: 16 << 10}); err != nil {
		t.Fatal(err)
	}
	registerBlob(rt)
	ctx := tenancy.ContextWith(context.Background(), "pack")
	ref := rt.SubmitCtx(ctx, task.NewSpec(rt.Job(), "blob",
		[]task.Arg{task.ValueArg([]byte("65536"))}, 1))
	gctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := rt.Get(gctx, ref[0]); skaderr.CodeOf(err) != skaderr.ResourceExhausted {
		t.Fatalf("over-quota Get = %v, want skaderr.ResourceExhausted", err)
	}
	rt.Drain()
	if a := rt.Tenancy.Account("pack"); a.Failed != 1 {
		t.Errorf("account = %+v, want the over-quota task counted failed", a)
	}
}

// TestTenantCacheQuotaEvictsOwnOldest: with EvictOnQuota the controller
// sheds the tenant's own oldest objects instead of rejecting, so a
// streaming workload stays under its byte quota and keeps completing.
func TestTenantCacheQuotaEvictsOwnOldest(t *testing.T) {
	rt := tenantRuntime(t, 1, 2, false)
	if err := rt.RegisterTenant(tenancy.Config{
		Name: "stream", MaxCacheBytes: 16 << 10, EvictOnQuota: true,
	}); err != nil {
		t.Fatal(err)
	}
	registerBlob(rt)
	ctx := tenancy.ContextWith(context.Background(), "stream")
	gctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Three 6KiB results against a 16KiB quota: the third put must evict
	// the first, not fail.
	for i := 0; i < 3; i++ {
		ref := rt.SubmitCtx(ctx, task.NewSpec(rt.Job(), "blob",
			[]task.Arg{task.ValueArg([]byte("6144"))}, 1))
		if data, err := rt.Get(gctx, ref[0]); err != nil || len(data) != 6144 {
			t.Fatalf("blob %d = %d bytes, %v", i, len(data), err)
		}
	}
	if got := rt.Tenancy.CacheBytes("stream"); got > 16<<10 {
		t.Errorf("tenant cache bytes = %d, want <= quota %d", got, 16<<10)
	}
}

// TestTenantFloodStressNoLeaks is the -race stress satellite: an
// antagonist floods SubmitCtx into a bounded queue while a higher-band
// victim's tasks preempt and replay underneath it. At quiesce every
// outcome is typed, per-tenant accounting balances exactly, and no
// admission waiter or dispatch goroutine leaks.
func TestTenantFloodStressNoLeaks(t *testing.T) {
	rt := tenantRuntime(t, 2, 2, true)
	if err := rt.RegisterTenant(tenancy.Config{Name: "victim", Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterTenant(tenancy.Config{Name: "ant", MaxPending: 8}); err != nil {
		t.Fatal(err)
	}
	// spin honors cancellation like a real kernel, so preemption revokes
	// it mid-flight instead of waiting it out.
	rt.Registry.Register("spin", func(tctx *task.Context, _ [][]byte) ([][]byte, error) {
		select {
		case <-time.After(time.Millisecond):
			return [][]byte{[]byte("ok")}, nil
		case <-tctx.Ctx.Done():
			return nil, tctx.Ctx.Err()
		}
	})
	rt.Drain()
	base := goruntime.NumGoroutine()

	antCtx := tenancy.ContextWith(context.Background(), "ant")
	vicCtx := tenancy.ContextWith(context.Background(), "victim")
	const floods, perFlood, vicTasks = 4, 30, 30
	var mu sync.Mutex
	var antRefs, vicRefs []idgen.ObjectID
	var wg sync.WaitGroup
	for f := 0; f < floods; f++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perFlood; i++ {
				refs := rt.SubmitCtx(antCtx, task.NewSpec(rt.Job(), "spin", nil, 1))
				mu.Lock()
				antRefs = append(antRefs, refs...)
				mu.Unlock()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < vicTasks; i++ {
			refs := rt.SubmitCtx(vicCtx, task.NewSpec(rt.Job(), "spin", nil, 1))
			mu.Lock()
			vicRefs = append(vicRefs, refs...)
			mu.Unlock()
			time.Sleep(200 * time.Microsecond)
		}
	}()
	wg.Wait()

	gctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i, ref := range vicRefs {
		if _, err := rt.Get(gctx, ref); err != nil {
			t.Fatalf("victim task %d lost under flood: %v", i, err)
		}
	}
	rejected := 0
	for i, ref := range antRefs {
		if _, err := rt.Get(gctx, ref); err != nil {
			if skaderr.CodeOf(err) != skaderr.ResourceExhausted {
				t.Fatalf("antagonist task %d failed untyped: %v", i, err)
			}
			rejected++
		}
	}
	rt.Drain()

	for _, a := range rt.Tenancy.Accounts() {
		if a.Submitted != a.Admitted+a.Rejected {
			t.Errorf("tenant %s: submitted %d != admitted %d + rejected %d",
				a.Tenant, a.Submitted, a.Admitted, a.Rejected)
		}
		if a.Admitted != a.Completed+a.Failed {
			t.Errorf("tenant %s: admitted %d != completed %d + failed %d at quiesce",
				a.Tenant, a.Admitted, a.Completed, a.Failed)
		}
		if a.InFlight != 0 || a.Queued != 0 || a.Running != 0 {
			t.Errorf("tenant %s: in-flight %d / queued %d / running %d, want all zero",
				a.Tenant, a.InFlight, a.Queued, a.Running)
		}
	}
	if a := rt.Tenancy.Account("ant"); int(a.Rejected) != rejected {
		t.Errorf("ant rejected = %d, but %d futures carried ResourceExhausted", a.Rejected, rejected)
	}
	waitGoroutinesAtMost(t, base+10)
}

// TestChaosPropertyTenants is the two-tenant chaos property suite: every
// episode splits the fan-out/fan-in DAG across two tenants (one holding a
// priority band over the other) with fair share and preemption armed,
// runs a seeded fault plan through it, and checks all six invariants —
// including I6, per-tenant accounting balance — at quiesce.
func TestChaosPropertyTenants(t *testing.T) {
	base := chaos.FlagSeed()
	for ep := 0; ep < chaosEpisodes(); ep++ {
		seed := base + int64(ep)
		runTenantChaosEpisode(t, seed)
		if t.Failed() {
			return
		}
	}
}

// runTenantChaosEpisode is runChaosEpisode with the tenancy plane armed
// and the DAG's leaves alternating between two tenants.
func runTenantChaosEpisode(t *testing.T, seed int64) {
	rt, err := New(ClusterSpec{
		Servers: 4, ServerSlots: 2, ServerMemBytes: 64 << 20,
	}, Options{
		Recovery: RecoverLineage, TimeScale: 1.0,
		Tenancy: tenancy.Options{FairShare: true, Preemption: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	if err := rt.RegisterTenant(tenancy.Config{Name: "blue", Priority: 1}); err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterTenant(tenancy.Config{Name: "green"}); err != nil {
		t.Fatal(err)
	}
	registerSquareAgg(rt, 300*time.Microsecond)
	checker := rt.ChaosChecker()

	_, faultable := rt.ChaosNodes()
	plan := chaos.Generate(seed, chaos.GenConfig{
		Faultable: faultable,
		Window:    3 * time.Millisecond,
		Mix:       chaos.Mix(uint64(seed) % 4),
	})

	// Same DAG shape as the single-tenant suite, leaves striped across the
	// two tenants; each aggregator is owned by the tenant of its stripe.
	const leaves, aggs = 8, 2
	tenantOf := func(i int) string {
		if i%2 == 0 {
			return "blue"
		}
		return "green"
	}
	want := make([]int, aggs)
	leafRefs := make([]idgen.ObjectID, leaves)
	for i := 0; i < leaves; i++ {
		lctx := tenancy.ContextWith(context.Background(), tenantOf(i))
		spec := task.NewSpec(rt.Job(), "leaf", []task.Arg{task.ValueArg([]byte(strconv.Itoa(i)))}, 1)
		leafRefs[i] = rt.SubmitCtx(lctx, spec)[0]
		want[i%aggs] += i * i
	}
	aggRefs := make([]idgen.ObjectID, aggs)
	for a := 0; a < aggs; a++ {
		var args []task.Arg
		for i := a; i < leaves; i += aggs {
			args = append(args, task.RefArg(leafRefs[i]))
		}
		actx := tenancy.ContextWith(context.Background(), tenantOf(a))
		aggRefs[a] = rt.SubmitCtx(actx, task.NewSpec(rt.Job(), "agg", args, 1))[0]
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rt.RunPlan(ctx, plan)

	for a, ref := range aggRefs {
		data, err := rt.Get(ctx, ref)
		if err != nil {
			if skaderr.CodeOf(err) == skaderr.OK {
				failEpisode(t, rt, seed, "episode seed=%d: agg %d failed untyped: %v", seed, a, err)
			}
			continue
		}
		if got, _ := strconv.Atoi(string(data)); got != want[a] {
			failEpisode(t, rt, seed, "episode seed=%d: agg %d = %q, want %d", seed, a, data, want[a])
		}
	}
	rt.Drain()

	if vs := checker.Check(); len(vs) != 0 {
		failEpisode(t, rt, seed, "episode seed=%d: %d invariant violation(s): %v", seed, len(vs), vs)
	}
}
