package runtime

import (
	"time"

	"skadi/internal/gossip"
	"skadi/internal/idgen"
	"skadi/internal/ownership"
)

// decentral.go wires the decentralized control plane (Options.Decentralized)
// into the runtime: the SWIM gossip detector is the single source of truth
// for node liveness, and its verdicts drive both the consistent-hash shard
// ring (ownership directory handoff) and the work-stealing mesh's candidate
// set. Centralized runtimes leave rt.gossip nil and every hook here is a
// no-op, so the default path pays nothing.

// Control-plane metric names, refreshed by SampleControlPlane and shown by
// `skadi -trace`.
const (
	// GaugeGossipAlive / Suspect / Dead are the failure detector's current
	// view counts.
	GaugeGossipAlive   = "gossip_alive"
	GaugeGossipSuspect = "gossip_suspect"
	GaugeGossipDead    = "gossip_dead"
	// GaugeDirHandoffs is the cumulative count of directory entries that
	// moved between shards on ring membership changes.
	GaugeDirHandoffs = "directory_handoffs"
	// GaugeShardEntries is the per-node directory shard size (labelled by
	// node short ID).
	GaugeShardEntries = "directory_shard_entries"
	// GaugeSchedSteals is the per-node count of tasks a node accepted by
	// stealing from a saturated home (labelled by node short ID).
	GaugeSchedSteals = "sched_steals"
	// GaugeStealLocalBytes / RemoteBytes split the reference-arg bytes of
	// stolen tasks by whether the thief already held a copy — the measure
	// of locality-aware stealing (E20's steal-bytes column).
	GaugeStealLocalBytes  = "sched_steal_local_bytes"
	GaugeStealRemoteBytes = "sched_steal_remote_bytes"
	// GaugeReplLogDepth is the total backlog across shard replication logs
	// (ops applied to a primary but not yet to its successor replica).
	GaugeReplLogDepth = "repl_log_depth"
	// GaugeReplPromotions / Restored / Lost count replica promotions on
	// node death, the directory entries they restored, and the entries no
	// replica covered (lost > 0 is an I7 durability violation).
	GaugeReplPromotions = "repl_promotions"
	GaugeReplRestored   = "repl_restored_entries"
	GaugeReplLost       = "repl_lost_entries"
)

// MetricLineageRecoveries counts task re-executions driven by lineage
// replay. With a replicated data plane and replicated shard metadata the
// chaos durability invariant (I7) requires this to stay zero: promotion
// must restore the directory, not recompute it.
const MetricLineageRecoveries = "lineage_recoveries"

// defaultGossipInterval paces the background failure-detector loop. With
// SuspectTicks=3 this puts silent-partition detection at ~10ms — far inside
// a chaos episode, far outside a healthy RPC.
const defaultGossipInterval = 2 * time.Millisecond

// Decentralized reports whether this runtime runs the distributed control
// plane.
func (rt *Runtime) Decentralized() bool { return rt.sharded != nil }

// gossipReachable is the detector's network oracle. Liveness is checked
// against cluster state first (a crashed node must never ack), then the
// probe rides the real transport as a gossip.probe RPC: it crosses the
// chaos interposer and the fabric, so the detector observes exactly the
// faults data traffic does — partitions drop the frame, injected
// chaos verdicts apply — instead of an oracle's opinion of them.
func (rt *Runtime) gossipReachable(from, to idgen.NodeID) bool {
	n := rt.Cluster.Node(to)
	if n == nil || !n.Alive() {
		return false
	}
	return rt.gossipProbe(from, to)
}

// applyGossipEvents feeds membership transitions into the shard ring and
// the scheduler. Suspect withdraws a node from scheduling but keeps its
// shard (the suspicion may be refuted); Dead additionally hands its key
// range to the survivors; Alive reverses both. The head is a permanent
// ring member and never leaves.
func (rt *Runtime) applyGossipEvents(events []gossip.Event) {
	for _, e := range events {
		switch e.Status {
		case gossip.Suspect:
			if e.Node != rt.driver {
				rt.Sched.SetAlive(e.Node, false)
			}
		case gossip.Dead:
			if e.Node != rt.driver {
				rt.Sched.SetAlive(e.Node, false)
				// Death promotes the node's replica: its shard is rebuilt
				// from the ring successor's copy, restoring waiters,
				// subscribers, and forwarding chains without lineage replay.
				// (Graceful departures keep using RemoveMember — see
				// noteNodeLeft — because the live table is still the best
				// source.)
				rt.sharded.RemoveMemberDead(e.Node)
			}
		case gossip.Alive:
			// Re-admit only nodes that are actually up: a stale Alive event
			// must not resurrect a crashed node in the scheduler.
			if n := rt.Cluster.Node(e.Node); n != nil && n.Alive() {
				rt.sharded.AddMember(e.Node)
				if e.Node != rt.driver {
					rt.Sched.SetAlive(e.Node, true)
				}
			}
		}
	}
}

// noteNodeDead records a confirmed crash (KillNode) in gossip and applies
// the resulting shard handoff synchronously. No-op when centralized.
func (rt *Runtime) noteNodeDead(node idgen.NodeID) {
	if rt.gossip == nil {
		return
	}
	rt.gossip.DeclareDead(node)
	rt.applyGossipEvents(rt.gossip.Drain())
}

// noteNodeAlive records a (re)join: RestartNode and partition heal route
// through here. Rejoining bumps the incarnation, which refutes any standing
// suspicion or death verdict. No-op when centralized or already alive.
func (rt *Runtime) noteNodeAlive(node idgen.NodeID) {
	if rt.gossip == nil {
		return
	}
	rt.gossip.Join(node)
	rt.applyGossipEvents(rt.gossip.Drain())
}

// noteNodeLeft records a graceful, permanent departure (Decommission).
func (rt *Runtime) noteNodeLeft(node idgen.NodeID) {
	if rt.gossip == nil {
		return
	}
	rt.gossip.Leave(node)
	rt.sharded.RemoveMember(node)
	rt.applyGossipEvents(rt.gossip.Drain())
}

// startGossipPump launches the background detector loop: each tick probes,
// ages suspicions, and applies whatever transitions fall out. This is what
// catches silent failures — partitions with no KillNode call behind them.
func (rt *Runtime) startGossipPump(interval time.Duration) {
	if interval <= 0 {
		interval = defaultGossipInterval
	}
	rt.gossipStop = make(chan struct{})
	rt.gossipWG.Add(1)
	go func() {
		defer rt.gossipWG.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-rt.gossipStop:
				return
			case <-ticker.C:
				rt.applyGossipEvents(rt.gossip.Tick())
				// Drain shard replication logs on the same cadence, so a
				// replica's lag is bounded by one gossip interval plus the
				// replogCap overflow drain.
				rt.sharded.FlushReplication()
			}
		}
	}()
}

// stopGossipPump halts the background loop (idempotent; safe when
// centralized).
func (rt *Runtime) stopGossipPump() {
	if rt.gossipStop == nil {
		return
	}
	select {
	case <-rt.gossipStop:
	default:
		close(rt.gossipStop)
	}
	rt.gossipWG.Wait()
}

// StepGossip advances the failure detector n rounds synchronously and
// applies the emitted transitions, returning how many there were. Tests use
// it to drive suspicion → death deterministically instead of sleeping
// against the background pump.
func (rt *Runtime) StepGossip(n int) int {
	if rt.gossip == nil {
		return 0
	}
	applied := 0
	for i := 0; i < n; i++ {
		events := rt.gossip.Tick()
		applied += len(events)
		rt.applyGossipEvents(events)
		rt.sharded.FlushReplication()
	}
	return applied
}

// ControlPlaneSample is a point-in-time view of the decentralized control
// plane's health, for experiments and `skadi -trace`.
type ControlPlaneSample struct {
	Decentralized bool
	// ShardEntries maps each ring member to its directory shard size.
	ShardEntries map[idgen.NodeID]int
	// Handoffs is the cumulative count of entries moved between shards.
	Handoffs uint64
	// Alive / Suspect / Dead are the gossip view counts.
	Alive, Suspect, Dead int
	// Steals maps each node to the tasks it accepted by work stealing.
	Steals map[idgen.NodeID]uint64
	// StealLocalBytes / StealRemoteBytes split stolen tasks' reference-arg
	// bytes by whether the thief already held a copy.
	StealLocalBytes, StealRemoteBytes int64
	// Repl summarizes shard replication: log backlog, promotions on node
	// death, and the entries those promotions restored or lost.
	Repl ownership.ReplicationStats
}

// SampleControlPlane refreshes the control-plane gauge families (gossip
// view counts, per-shard directory sizes, per-node steal counters) and
// returns the sample. On a centralized runtime it returns a zero sample and
// touches nothing.
func (rt *Runtime) SampleControlPlane() ControlPlaneSample {
	if rt.sharded == nil {
		return ControlPlaneSample{}
	}
	s := ControlPlaneSample{
		Decentralized: true,
		ShardEntries:  rt.sharded.ShardSizes(),
		Handoffs:      rt.sharded.Handoffs(),
		Steals:        rt.mesh.Steals(),
	}
	s.Alive, s.Suspect, s.Dead = rt.gossip.Counts()
	s.StealLocalBytes, s.StealRemoteBytes = rt.mesh.StealBytes()
	s.Repl = rt.sharded.ReplicationStats()

	rt.Metrics.Gauge(GaugeGossipAlive).Set(int64(s.Alive))
	rt.Metrics.Gauge(GaugeGossipSuspect).Set(int64(s.Suspect))
	rt.Metrics.Gauge(GaugeGossipDead).Set(int64(s.Dead))
	rt.Metrics.Gauge(GaugeDirHandoffs).Set(int64(s.Handoffs))
	rt.Metrics.Gauge(GaugeStealLocalBytes).Set(s.StealLocalBytes)
	rt.Metrics.Gauge(GaugeStealRemoteBytes).Set(s.StealRemoteBytes)
	rt.Metrics.Gauge(GaugeReplLogDepth).Set(int64(s.Repl.LogDepth))
	rt.Metrics.Gauge(GaugeReplPromotions).Set(int64(s.Repl.Promotions))
	rt.Metrics.Gauge(GaugeReplRestored).Set(int64(s.Repl.Restored))
	rt.Metrics.Gauge(GaugeReplLost).Set(int64(s.Repl.Lost))

	shards := rt.Metrics.GaugeVec(GaugeShardEntries)
	current := make(map[string]bool, len(s.ShardEntries))
	for node, n := range s.ShardEntries {
		label := node.Short()
		current[label] = true
		shards.With(label).Set(int64(n))
	}
	for _, label := range shards.Labels() {
		if !current[label] {
			shards.Delete(label)
		}
	}
	steals := rt.Metrics.GaugeVec(GaugeSchedSteals)
	for node, n := range s.Steals {
		steals.With(node.Short()).Set(int64(n))
	}
	return s
}
