package runtime

import (
	"time"

	"skadi/internal/gossip"
	"skadi/internal/idgen"
)

// decentral.go wires the decentralized control plane (Options.Decentralized)
// into the runtime: the SWIM gossip detector is the single source of truth
// for node liveness, and its verdicts drive both the consistent-hash shard
// ring (ownership directory handoff) and the work-stealing mesh's candidate
// set. Centralized runtimes leave rt.gossip nil and every hook here is a
// no-op, so the default path pays nothing.

// Control-plane metric names, refreshed by SampleControlPlane and shown by
// `skadi -trace`.
const (
	// GaugeGossipAlive / Suspect / Dead are the failure detector's current
	// view counts.
	GaugeGossipAlive   = "gossip_alive"
	GaugeGossipSuspect = "gossip_suspect"
	GaugeGossipDead    = "gossip_dead"
	// GaugeDirHandoffs is the cumulative count of directory entries that
	// moved between shards on ring membership changes.
	GaugeDirHandoffs = "directory_handoffs"
	// GaugeShardEntries is the per-node directory shard size (labelled by
	// node short ID).
	GaugeShardEntries = "directory_shard_entries"
	// GaugeSchedSteals is the per-node count of tasks a node accepted by
	// stealing from a saturated home (labelled by node short ID).
	GaugeSchedSteals = "sched_steals"
)

// defaultGossipInterval paces the background failure-detector loop. With
// SuspectTicks=3 this puts silent-partition detection at ~10ms — far inside
// a chaos episode, far outside a healthy RPC.
const defaultGossipInterval = 2 * time.Millisecond

// Decentralized reports whether this runtime runs the distributed control
// plane.
func (rt *Runtime) Decentralized() bool { return rt.sharded != nil }

// gossipReachable is the detector's network oracle: a probe lands iff the
// target is up and no chaos partition separates the pair.
func (rt *Runtime) gossipReachable(from, to idgen.NodeID) bool {
	n := rt.Cluster.Node(to)
	if n == nil || !n.Alive() {
		return false
	}
	return !rt.chaosEng.Partitioned(from, to)
}

// applyGossipEvents feeds membership transitions into the shard ring and
// the scheduler. Suspect withdraws a node from scheduling but keeps its
// shard (the suspicion may be refuted); Dead additionally hands its key
// range to the survivors; Alive reverses both. The head is a permanent
// ring member and never leaves.
func (rt *Runtime) applyGossipEvents(events []gossip.Event) {
	for _, e := range events {
		switch e.Status {
		case gossip.Suspect:
			if e.Node != rt.driver {
				rt.Sched.SetAlive(e.Node, false)
			}
		case gossip.Dead:
			if e.Node != rt.driver {
				rt.Sched.SetAlive(e.Node, false)
				rt.sharded.RemoveMember(e.Node)
			}
		case gossip.Alive:
			// Re-admit only nodes that are actually up: a stale Alive event
			// must not resurrect a crashed node in the scheduler.
			if n := rt.Cluster.Node(e.Node); n != nil && n.Alive() {
				rt.sharded.AddMember(e.Node)
				if e.Node != rt.driver {
					rt.Sched.SetAlive(e.Node, true)
				}
			}
		}
	}
}

// noteNodeDead records a confirmed crash (KillNode) in gossip and applies
// the resulting shard handoff synchronously. No-op when centralized.
func (rt *Runtime) noteNodeDead(node idgen.NodeID) {
	if rt.gossip == nil {
		return
	}
	rt.gossip.DeclareDead(node)
	rt.applyGossipEvents(rt.gossip.Drain())
}

// noteNodeAlive records a (re)join: RestartNode and partition heal route
// through here. Rejoining bumps the incarnation, which refutes any standing
// suspicion or death verdict. No-op when centralized or already alive.
func (rt *Runtime) noteNodeAlive(node idgen.NodeID) {
	if rt.gossip == nil {
		return
	}
	rt.gossip.Join(node)
	rt.applyGossipEvents(rt.gossip.Drain())
}

// noteNodeLeft records a graceful, permanent departure (Decommission).
func (rt *Runtime) noteNodeLeft(node idgen.NodeID) {
	if rt.gossip == nil {
		return
	}
	rt.gossip.Leave(node)
	rt.sharded.RemoveMember(node)
	rt.applyGossipEvents(rt.gossip.Drain())
}

// startGossipPump launches the background detector loop: each tick probes,
// ages suspicions, and applies whatever transitions fall out. This is what
// catches silent failures — partitions with no KillNode call behind them.
func (rt *Runtime) startGossipPump(interval time.Duration) {
	if interval <= 0 {
		interval = defaultGossipInterval
	}
	rt.gossipStop = make(chan struct{})
	rt.gossipWG.Add(1)
	go func() {
		defer rt.gossipWG.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-rt.gossipStop:
				return
			case <-ticker.C:
				rt.applyGossipEvents(rt.gossip.Tick())
			}
		}
	}()
}

// stopGossipPump halts the background loop (idempotent; safe when
// centralized).
func (rt *Runtime) stopGossipPump() {
	if rt.gossipStop == nil {
		return
	}
	select {
	case <-rt.gossipStop:
	default:
		close(rt.gossipStop)
	}
	rt.gossipWG.Wait()
}

// StepGossip advances the failure detector n rounds synchronously and
// applies the emitted transitions, returning how many there were. Tests use
// it to drive suspicion → death deterministically instead of sleeping
// against the background pump.
func (rt *Runtime) StepGossip(n int) int {
	if rt.gossip == nil {
		return 0
	}
	applied := 0
	for i := 0; i < n; i++ {
		events := rt.gossip.Tick()
		applied += len(events)
		rt.applyGossipEvents(events)
	}
	return applied
}

// ControlPlaneSample is a point-in-time view of the decentralized control
// plane's health, for experiments and `skadi -trace`.
type ControlPlaneSample struct {
	Decentralized bool
	// ShardEntries maps each ring member to its directory shard size.
	ShardEntries map[idgen.NodeID]int
	// Handoffs is the cumulative count of entries moved between shards.
	Handoffs uint64
	// Alive / Suspect / Dead are the gossip view counts.
	Alive, Suspect, Dead int
	// Steals maps each node to the tasks it accepted by work stealing.
	Steals map[idgen.NodeID]uint64
}

// SampleControlPlane refreshes the control-plane gauge families (gossip
// view counts, per-shard directory sizes, per-node steal counters) and
// returns the sample. On a centralized runtime it returns a zero sample and
// touches nothing.
func (rt *Runtime) SampleControlPlane() ControlPlaneSample {
	if rt.sharded == nil {
		return ControlPlaneSample{}
	}
	s := ControlPlaneSample{
		Decentralized: true,
		ShardEntries:  rt.sharded.ShardSizes(),
		Handoffs:      rt.sharded.Handoffs(),
		Steals:        rt.mesh.Steals(),
	}
	s.Alive, s.Suspect, s.Dead = rt.gossip.Counts()

	rt.Metrics.Gauge(GaugeGossipAlive).Set(int64(s.Alive))
	rt.Metrics.Gauge(GaugeGossipSuspect).Set(int64(s.Suspect))
	rt.Metrics.Gauge(GaugeGossipDead).Set(int64(s.Dead))
	rt.Metrics.Gauge(GaugeDirHandoffs).Set(int64(s.Handoffs))

	shards := rt.Metrics.GaugeVec(GaugeShardEntries)
	current := make(map[string]bool, len(s.ShardEntries))
	for node, n := range s.ShardEntries {
		label := node.Short()
		current[label] = true
		shards.With(label).Set(int64(n))
	}
	for _, label := range shards.Labels() {
		if !current[label] {
			shards.Delete(label)
		}
	}
	steals := rt.Metrics.GaugeVec(GaugeSchedSteals)
	for node, n := range s.Steals {
		steals.With(node.Short()).Set(int64(n))
	}
	return s
}
