package runtime

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
	"time"

	"skadi/internal/caching"
	"skadi/internal/idgen"
	"skadi/internal/raylet"
	"skadi/internal/scheduler"
	"skadi/internal/task"
)

// newRuntime boots a small runtime and registers arithmetic test functions.
func newRuntime(t *testing.T, opts Options) *Runtime {
	t.Helper()
	spec := ClusterSpec{
		Servers: 3, ServerSlots: 4, ServerMemBytes: 64 << 20,
		GPUs: 2, DeviceSlots: 2, DeviceMemBytes: 16 << 20,
		MemBladeBytes: 128 << 20,
	}
	rt, err := New(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)

	rt.Registry.Register("add", func(_ *task.Context, args [][]byte) ([][]byte, error) {
		sum := 0
		for _, a := range args {
			n, err := strconv.Atoi(string(a))
			if err != nil {
				return nil, err
			}
			sum += n
		}
		return [][]byte{[]byte(strconv.Itoa(sum))}, nil
	})
	rt.Registry.Register("echo", func(_ *task.Context, args [][]byte) ([][]byte, error) {
		return [][]byte{args[0]}, nil
	})
	rt.Registry.Register("upper", func(_ *task.Context, args [][]byte) ([][]byte, error) {
		return [][]byte{[]byte(strings.ToUpper(string(args[0])))}, nil
	})
	rt.Registry.Register("whoami", func(ctx *task.Context, _ [][]byte) ([][]byte, error) {
		return [][]byte{[]byte(ctx.Backend)}, nil
	})
	return rt
}

func TestPutGet(t *testing.T) {
	rt := newRuntime(t, Options{})
	id, err := rt.Put([]byte("input"), "raw")
	if err != nil {
		t.Fatal(err)
	}
	data, err := rt.Get(context.Background(), id)
	if err != nil || !bytes.Equal(data, []byte("input")) {
		t.Errorf("Get = %q, %v", data, err)
	}
}

func TestSubmitAndGet(t *testing.T) {
	rt := newRuntime(t, Options{})
	spec := task.NewSpec(rt.Job(), "add", []task.Arg{
		task.ValueArg([]byte("2")), task.ValueArg([]byte("3")),
	}, 1)
	refs := rt.Submit(spec)
	data, err := rt.Get(context.Background(), refs[0])
	if err != nil || string(data) != "5" {
		t.Errorf("Get = %q, %v", data, err)
	}
}

func TestTaskChainThroughFutures(t *testing.T) {
	rt := newRuntime(t, Options{})
	in, err := rt.Put([]byte("skadi"), "raw")
	if err != nil {
		t.Fatal(err)
	}
	s1 := task.NewSpec(rt.Job(), "upper", []task.Arg{task.RefArg(in)}, 1)
	refs1 := rt.Submit(s1)
	s2 := task.NewSpec(rt.Job(), "echo", []task.Arg{task.RefArg(refs1[0])}, 1)
	refs2 := rt.Submit(s2)
	data, err := rt.Get(context.Background(), refs2[0])
	if err != nil || string(data) != "SKADI" {
		t.Errorf("Get = %q, %v", data, err)
	}
}

func TestFanoutFanin(t *testing.T) {
	rt := newRuntime(t, Options{})
	var refs []idgen.ObjectID
	for i := 1; i <= 8; i++ {
		s := task.NewSpec(rt.Job(), "add", []task.Arg{task.ValueArg([]byte(strconv.Itoa(i)))}, 1)
		refs = append(refs, rt.Submit(s)[0])
	}
	var args []task.Arg
	for _, r := range refs {
		args = append(args, task.RefArg(r))
	}
	final := task.NewSpec(rt.Job(), "add", args, 1)
	out := rt.Submit(final)
	data, err := rt.Get(context.Background(), out[0])
	if err != nil || string(data) != "36" {
		t.Errorf("fan-in = %q, %v", data, err)
	}
}

func TestSubmitToGPUBackend(t *testing.T) {
	for _, mode := range []DeviceMode{Gen1, Gen2} {
		t.Run(mode.String(), func(t *testing.T) {
			rt := newRuntime(t, Options{DeviceMode: mode})
			spec := task.NewSpec(rt.Job(), "whoami", nil, 1)
			spec.Backend = "gpu"
			refs := rt.Submit(spec)
			data, err := rt.Get(context.Background(), refs[0])
			if err != nil || string(data) != "gpu" {
				t.Errorf("Get = %q, %v", data, err)
			}
		})
	}
}

func TestGen1ChargesDPUHops(t *testing.T) {
	run := func(mode DeviceMode) int64 {
		rt := newRuntime(t, Options{DeviceMode: mode})
		spec := task.NewSpec(rt.Job(), "whoami", nil, 1)
		spec.Backend = "gpu"
		refs := rt.Submit(spec)
		if _, err := rt.Get(context.Background(), refs[0]); err != nil {
			t.Fatal(err)
		}
		var hops int64
		for _, rl := range rt.Raylets() {
			hops += rl.Stats().DPUHops
		}
		return hops
	}
	gen1, gen2 := run(Gen1), run(Gen2)
	if gen1 == 0 {
		t.Error("Gen-1 should charge DPU hops")
	}
	if gen2 != 0 {
		t.Errorf("Gen-2 charged %d DPU hops, want 0", gen2)
	}
}

func TestTaskErrorSurfacesViaGet(t *testing.T) {
	rt := newRuntime(t, Options{})
	rt.Registry.Register("boom", func(*task.Context, [][]byte) ([][]byte, error) {
		return nil, context.DeadlineExceeded // arbitrary error
	})
	spec := task.NewSpec(rt.Job(), "boom", nil, 1)
	refs := rt.Submit(spec)
	_, err := rt.Get(context.Background(), refs[0])
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Get = %v, want task failure naming fn", err)
	}
}

func TestWait(t *testing.T) {
	rt := newRuntime(t, Options{})
	var refs []idgen.ObjectID
	for i := 0; i < 4; i++ {
		s := task.NewSpec(rt.Job(), "echo", []task.Arg{task.ValueArg([]byte("x"))}, 1)
		refs = append(refs, rt.Submit(s)[0])
	}
	ready, err := rt.Wait(context.Background(), refs, 4)
	if err != nil || len(ready) != 4 {
		t.Errorf("Wait = %d ready, %v", len(ready), err)
	}
}

func TestActorLifecycle(t *testing.T) {
	rt := newRuntime(t, Options{})
	rt.Registry.Register("append", func(ctx *task.Context, args [][]byte) ([][]byte, error) {
		state := append(ctx.ActorState["log"], args[0]...)
		ctx.ActorState["log"] = state
		return [][]byte{state}, nil
	})
	actor, err := rt.CreateActor("cpu")
	if err != nil {
		t.Fatal(err)
	}
	node, ok := rt.ActorNode(actor)
	if !ok || node.IsNil() {
		t.Fatal("actor has no node")
	}
	var last idgen.ObjectID
	for _, s := range []string{"a", "b", "c"} {
		spec := task.NewSpec(rt.Job(), "append", []task.Arg{task.ValueArg([]byte(s))}, 1)
		spec.Actor = actor
		last = rt.Submit(spec)[0]
		// Serialize: wait for each so state accumulates in order.
		if _, err := rt.Get(context.Background(), last); err != nil {
			t.Fatal(err)
		}
	}
	data, err := rt.Get(context.Background(), last)
	if err != nil || string(data) != "abc" {
		t.Errorf("actor state = %q, %v", data, err)
	}
}

func TestSubmitGang(t *testing.T) {
	rt := newRuntime(t, Options{})
	specs := make([]*task.Spec, 4)
	for i := range specs {
		specs[i] = task.NewSpec(rt.Job(), "echo", []task.Arg{task.ValueArg([]byte(strconv.Itoa(i)))}, 1)
		specs[i].Gang = "stage-0"
	}
	refs, err := rt.SubmitGang(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range refs {
		data, err := rt.Get(context.Background(), r[0])
		if err != nil || string(data) != strconv.Itoa(i) {
			t.Errorf("gang[%d] = %q, %v", i, data, err)
		}
	}
}

func TestKillNodeLineageRecovery(t *testing.T) {
	rt := newRuntime(t, Options{Recovery: RecoverLineage})
	in, err := rt.Put([]byte("7"), "raw")
	if err != nil {
		t.Fatal(err)
	}
	s1 := task.NewSpec(rt.Job(), "add", []task.Arg{task.RefArg(in), task.ValueArg([]byte("1"))}, 1)
	refs1 := rt.Submit(s1)
	if _, err := rt.Get(context.Background(), refs1[0]); err != nil {
		t.Fatal(err)
	}
	rt.Drain()

	// Find and kill the node holding the result.
	rec, err := rt.Head.Table.Get(refs1[0])
	if err != nil || len(rec.Locations) == 0 {
		t.Fatal("no location for result")
	}
	victim := rec.Locations[0]
	if victim == rt.Driver() {
		// Result cached at driver too; pick the worker copy if any.
		for _, l := range rec.Locations {
			if l != rt.Driver() {
				victim = l
			}
		}
	}
	stillLost := rt.KillNode(victim)
	if len(stillLost) != 0 {
		t.Errorf("lineage recovery left %d objects lost", len(stillLost))
	}
	data, err := rt.Get(context.Background(), refs1[0])
	if err != nil || string(data) != "8" {
		t.Errorf("Get after recovery = %q, %v", data, err)
	}
}

func TestKillNodeCacheRecovery(t *testing.T) {
	rt := newRuntime(t, Options{
		Recovery: RecoverCache,
		Caching:  caching.Config{Mode: caching.ModeReplicate, Replicas: 2},
	})
	spec := task.NewSpec(rt.Job(), "echo", []task.Arg{task.ValueArg([]byte("replicated"))}, 1)
	refs := rt.Submit(spec)
	if _, err := rt.Get(context.Background(), refs[0]); err != nil {
		t.Fatal(err)
	}
	rt.Drain()
	rec, err := rt.Head.Table.Get(refs[0])
	if err != nil {
		t.Fatal(err)
	}
	var victim idgen.NodeID
	for _, l := range rec.Locations {
		if l != rt.Driver() {
			victim = l
			break
		}
	}
	if victim.IsNil() {
		t.Skip("result only at driver; nothing to kill")
	}
	stillLost := rt.KillNode(victim)
	if len(stillLost) != 0 {
		t.Errorf("cache recovery left %d objects lost", len(stillLost))
	}
	data, err := rt.Get(context.Background(), refs[0])
	if err != nil || string(data) != "replicated" {
		t.Errorf("Get after recovery = %q, %v", data, err)
	}
}

func TestKillNodeNoRecoveryLosesObjects(t *testing.T) {
	rt := newRuntime(t, Options{Recovery: RecoverNone})
	// Place an object on a worker explicitly, then kill it.
	workers := rt.Raylets()
	var worker idgen.NodeID
	for _, rl := range workers {
		if rl.Node() != rt.Driver() {
			worker = rl.Node()
			break
		}
	}
	id, err := rt.PutAt(worker, []byte("doomed"), "raw")
	if err != nil {
		t.Fatal(err)
	}
	lost := rt.KillNode(worker)
	if len(lost) != 1 || lost[0] != id {
		t.Errorf("lost = %v, want [%s]", lost, id.Short())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := rt.Get(ctx, id); err == nil {
		t.Error("Get of lost object should fail")
	}
}

func TestDispatchRetriesOnDeadNode(t *testing.T) {
	rt := newRuntime(t, Options{})
	// Kill one worker; round-robin would have hit it eventually.
	victim := rt.Raylets()[1].Node()
	if victim == rt.Driver() {
		victim = rt.Raylets()[2].Node()
	}
	rt.Cluster.Kill(victim) // kill behind the scheduler's back
	for i := 0; i < 8; i++ {
		s := task.NewSpec(rt.Job(), "echo", []task.Arg{task.ValueArg([]byte("ok"))}, 1)
		refs := rt.Submit(s)
		data, err := rt.Get(context.Background(), refs[0])
		if err != nil || string(data) != "ok" {
			t.Fatalf("task %d: %q, %v", i, data, err)
		}
	}
}

func TestSchedulerPolicyOptionHonored(t *testing.T) {
	rt := newRuntime(t, Options{Policy: scheduler.DataLocality})
	if rt.Sched.Policy() != scheduler.DataLocality {
		t.Error("policy not applied")
	}
}

func TestPushResolutionEndToEnd(t *testing.T) {
	rt := newRuntime(t, Options{Resolution: raylet.Push})
	in, err := rt.Put([]byte("pipe"), "raw")
	if err != nil {
		t.Fatal(err)
	}
	s1 := task.NewSpec(rt.Job(), "upper", []task.Arg{task.RefArg(in)}, 1)
	r1 := rt.Submit(s1)
	s2 := task.NewSpec(rt.Job(), "echo", []task.Arg{task.RefArg(r1[0])}, 1)
	r2 := rt.Submit(s2)
	data, err := rt.Get(context.Background(), r2[0])
	if err != nil || string(data) != "PIPE" {
		t.Errorf("Get = %q, %v", data, err)
	}
}
