package runtime

import (
	"context"
	"errors"
	goruntime "runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"skadi/internal/idgen"
	"skadi/internal/skaderr"
	"skadi/internal/task"
)

// registerBlocker installs a function under name that parks until release is
// closed or the task is cancelled, signalling started (once) when it first
// runs. Tests use it to hold tasks in flight deterministically.
func registerBlocker(rt *Runtime, name string, started chan struct{}, release <-chan struct{}) {
	var once sync.Once
	rt.Registry.Register(name, func(tctx *task.Context, _ [][]byte) ([][]byte, error) {
		once.Do(func() { close(started) })
		select {
		case <-release:
			return [][]byte{[]byte("done")}, nil
		case <-tctx.Ctx.Done():
			return nil, tctx.Ctx.Err()
		}
	})
}

// registerBlockerCount is like registerBlocker but closes started only once n
// invocations are running, so tests can saturate every worker slot before
// probing scheduler behaviour.
func registerBlockerCount(rt *Runtime, name string, n int, started chan struct{}, release <-chan struct{}) {
	var running atomic.Int64
	rt.Registry.Register(name, func(tctx *task.Context, _ [][]byte) ([][]byte, error) {
		if running.Add(1) == int64(n) {
			close(started)
		}
		select {
		case <-release:
			return [][]byte{[]byte("done")}, nil
		case <-tctx.Ctx.Done():
			return nil, tctx.Ctx.Err()
		}
	})
}

func TestCancelCascadesOverLineage(t *testing.T) {
	rt := newRuntime(t, Options{})
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	registerBlocker(rt, "block", started, release)

	// Depth-3 chain through futures: block -> echo -> echo.
	root := task.NewSpec(rt.Job(), "block", nil, 1)
	rootRefs := rt.Submit(root)
	mid := task.NewSpec(rt.Job(), "echo", []task.Arg{task.RefArg(rootRefs[0])}, 1)
	midRefs := rt.Submit(mid)
	leaf := task.NewSpec(rt.Job(), "echo", []task.Arg{task.RefArg(midRefs[0])}, 1)
	leafRefs := rt.Submit(leaf)

	<-started // the root occupies a worker before we cancel

	rep := rt.Cancel(rootRefs[0])
	if rep.TasksCancelled != 3 {
		t.Errorf("TasksCancelled = %d, want 3 (root + 2 descendants)", rep.TasksCancelled)
	}
	if rep.WorkersReclaimed < 1 {
		t.Errorf("WorkersReclaimed = %d, want >= 1 (root was executing)", rep.WorkersReclaimed)
	}
	for i, ref := range []idgen.ObjectID{rootRefs[0], midRefs[0], leafRefs[0]} {
		_, err := rt.Get(context.Background(), ref)
		if !errors.Is(err, skaderr.Cancelled) {
			t.Errorf("Get(chain[%d]) = %v, want skaderr.Cancelled", i, err)
		}
	}
	if got := rt.Metrics.Counter(MetricTasksCancelled).Value(); got != 3 {
		t.Errorf("%s = %d, want 3", MetricTasksCancelled, got)
	}
	if got := rt.Metrics.Counter(MetricWorkersReclaimed).Value(); got < 1 {
		t.Errorf("%s = %d, want >= 1", MetricWorkersReclaimed, got)
	}
}

func TestCancelInterruptsExecutingTask(t *testing.T) {
	rt := newRuntime(t, Options{})
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	registerBlocker(rt, "block", started, release)

	spec := task.NewSpec(rt.Job(), "block", nil, 1)
	refs := rt.Submit(spec)
	<-started

	begin := time.Now()
	rep := rt.Cancel(refs[0])
	if rep.TasksCancelled != 1 || rep.WorkersReclaimed != 1 {
		t.Errorf("report = %+v, want 1 task cancelled, 1 worker reclaimed", rep)
	}
	if _, err := rt.Get(context.Background(), refs[0]); !errors.Is(err, skaderr.Cancelled) {
		t.Errorf("Get = %v, want skaderr.Cancelled", err)
	}
	// The interrupt rides the context to the blocked function body: the
	// future must fail long before the blocker would have been released.
	if since := time.Since(begin); since > 5*time.Second {
		t.Errorf("cancel-to-failure took %v, in-flight task was not interrupted", since)
	}
	rt.Drain() // the revoked dispatch goroutine exits promptly
}

func TestSubmitDeadlineFailsFuture(t *testing.T) {
	rt := newRuntime(t, Options{})
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	registerBlocker(rt, "block", started, release)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	spec := task.NewSpec(rt.Job(), "block", nil, 1)
	refs := rt.SubmitCtx(ctx, spec)

	_, err := rt.Get(context.Background(), refs[0])
	if !errors.Is(err, skaderr.DeadlineExceeded) {
		t.Errorf("Get = %v, want skaderr.DeadlineExceeded", err)
	}
	if got := rt.Metrics.Counter(MetricTasksDeadlineExceeded).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", MetricTasksDeadlineExceeded, got)
	}
}

func TestSubmitWithCancelledContext(t *testing.T) {
	rt := newRuntime(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := task.NewSpec(rt.Job(), "echo", []task.Arg{task.ValueArg([]byte("x"))}, 1)
	refs := rt.SubmitCtx(ctx, spec)
	if _, err := rt.Get(context.Background(), refs[0]); !errors.Is(err, skaderr.Cancelled) {
		t.Errorf("Get = %v, want skaderr.Cancelled", err)
	}
}

func TestCancelFreesCommittedOutputs(t *testing.T) {
	rt := newRuntime(t, Options{})
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	rt.Registry.Register("blockArg", func(tctx *task.Context, args [][]byte) ([][]byte, error) {
		close(started)
		select {
		case <-release:
			return [][]byte{args[0]}, nil
		case <-tctx.Ctx.Done():
			return nil, tctx.Ctx.Err()
		}
	})

	payload := make([]byte, 4096)
	root := task.NewSpec(rt.Job(), "echo", []task.Arg{task.ValueArg(payload)}, 1)
	rootRefs := rt.Submit(root)
	if _, err := rt.Get(context.Background(), rootRefs[0]); err != nil {
		t.Fatal(err)
	}
	leaf := task.NewSpec(rt.Job(), "blockArg", []task.Arg{task.RefArg(rootRefs[0])}, 1)
	rt.Submit(leaf)
	<-started

	rep := rt.Cancel(rootRefs[0])
	if rep.TasksCancelled != 2 {
		t.Errorf("TasksCancelled = %d, want 2", rep.TasksCancelled)
	}
	if rep.BytesReclaimed < int64(len(payload)) {
		t.Errorf("BytesReclaimed = %d, want >= %d (root's committed output)", rep.BytesReclaimed, len(payload))
	}
	if rt.Layer.Contains(rootRefs[0]) {
		t.Error("cancelled graph's committed output still resident in the caching layer")
	}
	if got := rt.Metrics.Counter(MetricBytesReclaimed).Value(); got < int64(len(payload)) {
		t.Errorf("%s = %d, want >= %d", MetricBytesReclaimed, got, len(payload))
	}
}

// TestCancelledTaskNotResurrected verifies lineage recovery never re-runs
// revoked work: after Cancel, Get must keep failing with Cancelled rather
// than replaying the producing task.
func TestCancelledTaskNotResurrected(t *testing.T) {
	rt := newRuntime(t, Options{Recovery: RecoverLineage})
	var runs atomic.Int64
	rt.Registry.Register("countedEcho", func(_ *task.Context, args [][]byte) ([][]byte, error) {
		runs.Add(1)
		return [][]byte{args[0]}, nil
	})

	spec := task.NewSpec(rt.Job(), "countedEcho", []task.Arg{task.ValueArg([]byte("v"))}, 1)
	refs := rt.Submit(spec)
	if _, err := rt.Get(context.Background(), refs[0]); err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("task ran %d times before cancel, want 1", got)
	}

	rt.Cancel(refs[0])
	if _, err := rt.Get(context.Background(), refs[0]); !errors.Is(err, skaderr.Cancelled) {
		t.Errorf("Get after cancel = %v, want skaderr.Cancelled", err)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("task ran %d times, recovery resurrected cancelled work", got)
	}
}

func TestGetWaitersReleasedOnCancel(t *testing.T) {
	rt := newRuntime(t, Options{})
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	registerBlocker(rt, "block", started, release)

	spec := task.NewSpec(rt.Job(), "block", nil, 1)
	refs := rt.Submit(spec)
	<-started

	base := goruntime.NumGoroutine()
	const waiters = 20
	errCh := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := rt.Get(context.Background(), refs[0])
			errCh <- err
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the waiters park

	rt.Cancel(refs[0])
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errCh:
			if !errors.Is(err, skaderr.Cancelled) {
				t.Errorf("waiter %d: Get = %v, want skaderr.Cancelled", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d still blocked after cancel", i)
		}
	}
	waitGoroutinesAtMost(t, base+2)
}

func TestGetWaiterReleasedOnDeadline(t *testing.T) {
	rt := newRuntime(t, Options{})
	started := make(chan struct{})
	release := make(chan struct{})
	registerBlocker(rt, "block", started, release)
	spec := task.NewSpec(rt.Job(), "block", nil, 1)
	refs := rt.Submit(spec)
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := rt.Get(ctx, refs[0])
	if !errors.Is(err, skaderr.DeadlineExceeded) {
		t.Errorf("Get = %v, want skaderr.DeadlineExceeded", err)
	}
	close(release)
	rt.Drain()
}

func TestGetWaiterReleasedOnNodeKill(t *testing.T) {
	rt := newRuntime(t, Options{})
	node := rt.workerServers()[0]
	rt.KillNode(node)

	// Pinned to a dead node, the dispatch cannot fail over: the future must
	// fail with Unavailable rather than leave the waiter parked.
	spec := task.NewSpec(rt.Job(), "echo", []task.Arg{task.ValueArg([]byte("x"))}, 1)
	refs := rt.SubmitTo(node, spec)
	_, err := rt.Get(context.Background(), refs[0])
	if !errors.Is(err, skaderr.Unavailable) {
		t.Errorf("Get = %v, want skaderr.Unavailable", err)
	}
}

func TestShutdownReleasesWaiters(t *testing.T) {
	rt := newRuntime(t, Options{})
	// A pending object with no in-flight producer: the shape left behind by
	// an aborted recovery or a crashed submitter.
	id := idgen.Next()
	if err := rt.Head.Table.CreatePending(id, rt.Driver(), idgen.Next()); err != nil {
		t.Fatal(err)
	}
	const waiters = 8
	errCh := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := rt.Get(context.Background(), id)
			errCh <- err
		}()
	}
	time.Sleep(20 * time.Millisecond)

	rt.Shutdown()
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errCh:
			if !errors.Is(err, skaderr.Unavailable) {
				t.Errorf("waiter %d: Get = %v, want skaderr.Unavailable", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d outlived Shutdown", i)
		}
	}
}

// TestCancelDoesNotLoseFrozenActorCalls runs a cancellation of an unrelated
// chain concurrently with an actor migration: calls queued behind the
// migration gate must all land exactly once on the resumed actor.
func TestCancelDoesNotLoseFrozenActorCalls(t *testing.T) {
	rt := newRuntime(t, Options{})
	registerCounter(rt)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	registerBlocker(rt, "block", started, release)

	workers := rt.workerServers()
	actor, err := rt.CreateActorOn(workers[0], "cpu")
	if err != nil {
		t.Fatal(err)
	}
	if got := count(t, rt, actor); got != 1 {
		t.Fatalf("warm-up count = %d, want 1", got)
	}

	// The doomed chain holds a worker so the cancel has something in flight.
	doomed := task.NewSpec(rt.Job(), "block", nil, 1)
	doomedRefs := rt.Submit(doomed)
	<-started

	// Freeze the actor and, while frozen, queue calls and fire the cancel.
	const calls = 5
	var refs []idgen.ObjectID
	migDone := make(chan error, 1)
	go func() {
		_, merr := rt.MigrateActor(context.Background(), actor, workers[1])
		migDone <- merr
	}()
	for i := 0; i < calls; i++ {
		spec := task.NewSpec(rt.Job(), "counter", nil, 1)
		spec.Actor = actor
		refs = append(refs, rt.Submit(spec)...)
	}
	rt.Cancel(doomedRefs[0])
	if merr := <-migDone; merr != nil {
		t.Fatalf("MigrateActor: %v", merr)
	}

	// Every queued call survives the freeze + concurrent cancel: the
	// counter reaches 1 (warm-up) + calls, each value observed exactly once.
	seen := make(map[int]bool)
	for i, ref := range refs {
		data, err := rt.Get(context.Background(), ref)
		if err != nil {
			t.Fatalf("actor call %d lost: %v", i, err)
		}
		n, _ := strconv.Atoi(string(data))
		if seen[n] {
			t.Errorf("actor call %d: duplicate counter value %d", i, n)
		}
		seen[n] = true
	}
	if got := count(t, rt, actor); got != calls+2 {
		t.Errorf("final count = %d, want %d", got, calls+2)
	}
	if _, err := rt.Get(context.Background(), doomedRefs[0]); !errors.Is(err, skaderr.Cancelled) {
		t.Errorf("doomed chain Get = %v, want skaderr.Cancelled", err)
	}
}

// waitGoroutinesAtMost polls until the goroutine count settles at or below
// limit, failing the test if it does not within the deadline.
func waitGoroutinesAtMost(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := goruntime.NumGoroutine()
		if n <= limit {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutine count settled at %d, want <= %d (leaked waiters)", n, limit)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubmitGangWaitsEventDriven saturates every CPU slot, parks a gang
// submission behind the capacity watch, and verifies it proceeds once slots
// free — the event-driven replacement for the old 1 ms poll loop.
func TestSubmitGangWaitsEventDriven(t *testing.T) {
	rt := newRuntime(t, Options{})
	started := make(chan struct{})
	release := make(chan struct{})
	// 3 servers x 4 slots: wait until all 12 blockers are running so the
	// cluster is provably saturated before the gang is submitted.
	const blockers = 12
	registerBlockerCount(rt, "block", blockers, started, release)
	for i := 0; i < blockers; i++ {
		rt.Submit(task.NewSpec(rt.Job(), "block", nil, 1))
	}
	<-started

	specs := make([]*task.Spec, 4)
	for i := range specs {
		specs[i] = task.NewSpec(rt.Job(), "echo", []task.Arg{task.ValueArg([]byte("g"))}, 1)
		specs[i].Gang = "wakeup"
	}
	type gangResult struct {
		refs [][]idgen.ObjectID
		err  error
	}
	done := make(chan gangResult, 1)
	go func() {
		refs, err := rt.SubmitGang(context.Background(), specs)
		done <- gangResult{refs, err}
	}()

	// The gang must still be parked: no capacity has freed.
	select {
	case res := <-done:
		t.Fatalf("gang placed on a saturated cluster: %v, %v", res.refs, res.err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release) // blockers drain; each Finished fires the capacity watch
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("SubmitGang after capacity freed: %v", res.err)
		}
		for i, r := range res.refs {
			if _, err := rt.Get(context.Background(), r[0]); err != nil {
				t.Errorf("gang[%d]: %v", i, err)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gang never woke after capacity freed (lost wakeup)")
	}
}

// TestSubmitGangHonorsContext cancels the submitting context while the gang
// is parked waiting for capacity.
func TestSubmitGangHonorsContext(t *testing.T) {
	rt := newRuntime(t, Options{})
	started := make(chan struct{})
	release := make(chan struct{})
	const blockers = 12
	registerBlockerCount(rt, "block", blockers, started, release)
	defer func() {
		close(release)
		rt.Drain()
	}()

	for i := 0; i < blockers; i++ {
		rt.Submit(task.NewSpec(rt.Job(), "block", nil, 1))
	}
	<-started // every slot is occupied; the gang below must park

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	specs := []*task.Spec{task.NewSpec(rt.Job(), "echo", []task.Arg{task.ValueArg([]byte("g"))}, 1)}
	specs[0].Gang = "doomed"
	go func() {
		_, err := rt.SubmitGang(ctx, specs)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, skaderr.Cancelled) {
			t.Errorf("SubmitGang = %v, want skaderr.Cancelled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SubmitGang ignored context cancellation while parked")
	}
}
