package runtime

import (
	"context"
	"testing"

	"skadi/internal/idgen"
	"skadi/internal/raylet"
	"skadi/internal/task"
)

func benchRuntime(b *testing.B, opts Options) *Runtime {
	b.Helper()
	rt, err := New(ClusterSpec{
		Servers: 4, ServerSlots: 8, ServerMemBytes: 1 << 30,
	}, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Shutdown)
	rt.Registry.Register("noop", func(_ *task.Context, _ [][]byte) ([][]byte, error) {
		return [][]byte{nil}, nil
	})
	rt.Registry.Register("pass", func(_ *task.Context, args [][]byte) ([][]byte, error) {
		return [][]byte{args[0]}, nil
	})
	return rt
}

// BenchmarkTaskThroughput measures end-to-end submit→execute→get for
// trivial tasks: the control-plane overhead floor.
func BenchmarkTaskThroughput(b *testing.B) {
	rt := benchRuntime(b, Options{})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refs := rt.Submit(task.NewSpec(rt.Job(), "noop", nil, 1))
		if _, err := rt.Get(ctx, refs[0]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFutureChain measures a dependent chain: each link adds one
// resolution (ownership round trips + fetch) on top of execution.
func BenchmarkFutureChain(b *testing.B) {
	for _, res := range []raylet.Resolution{raylet.Pull, raylet.Push} {
		b.Run(res.String(), func(b *testing.B) {
			rt := benchRuntime(b, Options{Resolution: res})
			ctx := context.Background()
			prev, err := rt.Put(make([]byte, 1024), "raw")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spec := task.NewSpec(rt.Job(), "pass", []task.Arg{task.RefArg(prev)}, 1)
				prev = rt.Submit(spec)[0]
			}
			if _, err := rt.Get(ctx, prev); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFanout measures parallel independent submissions drained in
// batches of 64 — scheduler + worker-pool contention.
func BenchmarkFanout64(b *testing.B) {
	rt := benchRuntime(b, Options{})
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		refs := make([]idgen.ObjectID, 64)
		for j := range refs {
			refs[j] = rt.Submit(task.NewSpec(rt.Job(), "noop", nil, 1))[0]
		}
		if _, err := rt.Wait(ctx, refs, len(refs)); err != nil {
			b.Fatal(err)
		}
	}
}
