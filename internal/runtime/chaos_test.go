package runtime

import (
	"context"
	"strconv"
	"testing"
	"time"

	"skadi/internal/chaos"
	"skadi/internal/idgen"
	"skadi/internal/skaderr"
	"skadi/internal/task"
)

// registerSquareAgg installs the fan-out/fan-in kernels the chaos suites
// share: "leaf" squares its input, "agg" sums its arguments.
func registerSquareAgg(rt *Runtime, compute time.Duration) {
	rt.Registry.Register("leaf", func(tctx *task.Context, args [][]byte) ([][]byte, error) {
		tctx.Compute(compute)
		n, err := strconv.Atoi(string(args[0]))
		if err != nil {
			return nil, err
		}
		return [][]byte{[]byte(strconv.Itoa(n * n))}, nil
	})
	rt.Registry.Register("agg", func(tctx *task.Context, args [][]byte) ([][]byte, error) {
		tctx.Compute(compute)
		total := 0
		for _, a := range args {
			n, err := strconv.Atoi(string(a))
			if err != nil {
				return nil, err
			}
			total += n
		}
		return [][]byte{[]byte(strconv.Itoa(total))}, nil
	})
}

// submitFanOutFanIn submits the two-level DAG and returns the aggregator
// refs, leaf refs, and expected aggregator values.
func submitFanOutFanIn(rt *Runtime, leaves, aggs int) (aggRefs, leafRefs []idgen.ObjectID, want []int) {
	want = make([]int, aggs)
	leafRefs = make([]idgen.ObjectID, leaves)
	for i := 0; i < leaves; i++ {
		spec := task.NewSpec(rt.Job(), "leaf", []task.Arg{task.ValueArg([]byte(strconv.Itoa(i)))}, 1)
		leafRefs[i] = rt.Submit(spec)[0]
		want[i%aggs] += i * i
	}
	aggRefs = make([]idgen.ObjectID, aggs)
	for a := 0; a < aggs; a++ {
		var args []task.Arg
		for i := a; i < leaves; i += aggs {
			args = append(args, task.RefArg(leafRefs[i]))
		}
		aggRefs[a] = rt.Submit(task.NewSpec(rt.Job(), "agg", args, 1))[0]
	}
	return aggRefs, leafRefs, want
}

// TestChaosKillsDuringFanOutFanIn runs a two-level DAG (24 leaf tasks
// feeding 4 aggregators) while a chaos plan kills worker nodes mid-flight,
// and asserts that lineage recovery still produces every correct result —
// exercising retry-on-unreachable dispatch, transitive recovery plans, and
// Get-level replay together. The fault schedule is a chaos.Plan: two
// timed crashes plus one restart, journaled and replayable.
func TestChaosKillsDuringFanOutFanIn(t *testing.T) {
	rt, err := New(ClusterSpec{
		Servers: 6, ServerSlots: 2, ServerMemBytes: 128 << 20,
	}, Options{Recovery: RecoverLineage, TimeScale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	registerSquareAgg(rt, 2*time.Millisecond)

	aggRefs, _, want := submitFanOutFanIn(rt, 24, 4)

	// Chaos plan: kill two workers while the DAG is in flight, restart one.
	_, faultable := rt.ChaosNodes()
	plan := &chaos.Plan{Seed: chaos.FlagSeed(), Events: []chaos.Event{
		{At: 3 * time.Millisecond, Kind: chaos.EventCrash, Nodes: []int{faultable[0]}},
		{At: 5 * time.Millisecond, Kind: chaos.EventCrash, Nodes: []int{faultable[1]}},
		{At: 5 * time.Millisecond, Kind: chaos.EventRestart, Nodes: []int{faultable[0]}},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rt.RunPlan(ctx, plan)

	for a, ref := range aggRefs {
		data, err := rt.Get(ctx, ref)
		if err != nil {
			t.Fatalf("agg %d after chaos: %v", a, err)
		}
		got, err := strconv.Atoi(string(data))
		if err != nil || got != want[a] {
			t.Errorf("agg %d = %q, want %d", a, data, want[a])
		}
	}
	rt.Drain()
}

// TestChaosRepeatedKillsSequential kills a different node between every
// read of a long chain, forcing repeated lineage replays. The kills are a
// stepped chaos plan: each round applies one crash step, reads through the
// recovery, then applies the matching restart step.
func TestChaosRepeatedKillsSequential(t *testing.T) {
	rt, err := New(ClusterSpec{
		Servers: 4, ServerSlots: 2, ServerMemBytes: 128 << 20,
	}, Options{Recovery: RecoverLineage})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	rt.Registry.Register("inc", func(_ *task.Context, args [][]byte) ([][]byte, error) {
		n, err := strconv.Atoi(string(args[0]))
		if err != nil {
			return nil, err
		}
		return [][]byte{[]byte(strconv.Itoa(n + 1))}, nil
	})

	ctx := context.Background()
	prev, err := rt.Put([]byte("0"), "raw")
	if err != nil {
		t.Fatal(err)
	}
	var refs []idgen.ObjectID
	for i := 0; i < 6; i++ {
		spec := task.NewSpec(rt.Job(), "inc", []task.Arg{task.RefArg(prev)}, 1)
		prev = rt.Submit(spec)[0]
		refs = append(refs, prev)
		if _, err := rt.Get(ctx, prev); err != nil {
			t.Fatal(err)
		}
	}
	rt.Drain()

	const rounds = 3
	_, faultable := rt.ChaosNodes()
	plan := &chaos.Plan{Seed: chaos.FlagSeed()}
	for round := 0; round < rounds; round++ {
		victim := faultable[round%len(faultable)]
		plan.Events = append(plan.Events,
			chaos.Event{Step: 2*round + 1, Kind: chaos.EventCrash, Nodes: []int{victim}},
			chaos.Event{Step: 2*round + 2, Kind: chaos.EventRestart, Nodes: []int{victim}},
		)
	}
	rt.InstallPlan(plan)
	defer rt.HealChaos()
	for round := 0; round < rounds; round++ {
		rt.ApplyStep(ctx, plan, 2*round+1)
		data, err := rt.Get(ctx, refs[len(refs)-1])
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if string(data) != "6" {
			t.Fatalf("round %d: result = %q, want 6", round, data)
		}
		rt.ApplyStep(ctx, plan, 2*round+2)
	}
}

// TestChaosDecommissionDuringFanOutFanIn runs the same two-level DAG while
// a chaos plan gracefully decommissions two workers (not kills) mid-flight.
// Unlike the kill test, recovery here must be invisible: the drain waits
// out in-flight tasks, live-migrates resident data, and zero tasks fail or
// replay.
func TestChaosDecommissionDuringFanOutFanIn(t *testing.T) {
	rt, err := New(ClusterSpec{
		Servers: 6, ServerSlots: 2, ServerMemBytes: 128 << 20,
	}, Options{Recovery: RecoverLineage, TimeScale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	registerSquareAgg(rt, 2*time.Millisecond)

	aggRefs, leafRefs, want := submitFanOutFanIn(rt, 24, 4)
	workersBefore := len(rt.workerServers())

	// Chaos plan: shrink the pool by two workers while the DAG is in flight.
	_, faultable := rt.ChaosNodes()
	plan := &chaos.Plan{Seed: chaos.FlagSeed(), Events: []chaos.Event{
		{At: 3 * time.Millisecond, Kind: chaos.EventDecommission, Nodes: []int{faultable[0], faultable[1]}},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rt.RunPlan(ctx, plan)

	failed := 0
	for a, ref := range aggRefs {
		data, err := rt.Get(ctx, ref)
		if err != nil {
			failed++
			t.Errorf("agg %d after decommission: %v", a, err)
			continue
		}
		got, err := strconv.Atoi(string(data))
		if err != nil || got != want[a] {
			t.Errorf("agg %d = %q, want %d", a, data, want[a])
		}
	}
	if failed != 0 {
		t.Fatalf("%d tasks failed during graceful decommission, want 0", failed)
	}
	// Every leaf intermediate is also still readable: the drain moved them
	// rather than dropping them on the floor.
	for i, ref := range leafRefs {
		data, err := rt.Get(ctx, ref)
		if err != nil {
			t.Fatalf("leaf %d after decommission: %v", i, err)
		}
		if got, _ := strconv.Atoi(string(data)); got != i*i {
			t.Errorf("leaf %d = %q, want %d", i, data, i*i)
		}
	}
	if got := len(rt.workerServers()); got != workersBefore-2 {
		t.Errorf("worker count after shrink = %d, want %d", got, workersBefore-2)
	}
	rt.Drain()
}

// TestChaosMigrationDuringPartition partitions the migration destination
// away mid-protocol: the freeze lands on the (reachable) source, the state
// transfer to the partitioned destination fails, and the migrator must
// roll back — the actor resumes on the source with no frozen-actor or
// lock leak (checker I3). After heal, the same migration succeeds. The
// destination choice is seeded, so a failure replays with -chaos.seed.
func TestChaosMigrationDuringPartition(t *testing.T) {
	rt, err := New(ClusterSpec{
		Servers: 4, ServerSlots: 2, ServerMemBytes: 64 << 20,
	}, Options{Recovery: RecoverLineage})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	registerCounter(rt)

	workers := rt.workerServers()
	actor, err := rt.CreateActorOn(workers[0], "cpu")
	if err != nil {
		t.Fatal(err)
	}
	if got := count(t, rt, actor); got != 1 {
		t.Fatalf("pre-chaos count = %d", got)
	}
	checker := rt.ChaosChecker()

	// Seed picks which worker to partition away (never the actor's host).
	seed := chaos.FlagSeed()
	_, faultable := rt.ChaosNodes()
	dstPick := 1 + int(uint64(seed)%uint64(len(faultable)-1))
	dst := workers[dstPick]
	plan := &chaos.Plan{Seed: seed, Events: []chaos.Event{
		{Step: 1, Kind: chaos.EventPartition, Nodes: []int{faultable[dstPick]}},
		{Step: 2, Kind: chaos.EventHeal},
	}}
	rt.InstallPlan(plan)
	defer rt.HealChaos()
	ctx := context.Background()
	rt.ApplyStep(ctx, plan, 1)

	if _, err := rt.MigrateActor(ctx, actor, dst); err == nil {
		t.Fatalf("migration to partitioned node %s succeeded, want failure (seed=%d)", dst.Short(), seed)
	}
	// Rollback must leave the actor live on the source: counting continues.
	if node, _ := rt.ActorNode(actor); node != workers[0] {
		t.Fatalf("actor moved to %s despite failed migration (seed=%d)", node.Short(), seed)
	}
	if got := count(t, rt, actor); got != 2 {
		t.Fatalf("count after rolled-back migration = %d, want 2 (seed=%d)", got, seed)
	}
	if vs := checker.Check(); len(vs) != 0 {
		t.Fatalf("invariant violations after rolled-back migration (seed=%d): %v", seed, vs)
	}

	rt.ApplyStep(ctx, plan, 2)
	if _, err := rt.MigrateActor(ctx, actor, dst); err != nil {
		t.Fatalf("post-heal migration: %v (seed=%d)", err, seed)
	}
	if node, _ := rt.ActorNode(actor); node != dst {
		t.Fatalf("actor on %s after successful migration, want %s (seed=%d)", node.Short(), dst.Short(), seed)
	}
	if got := count(t, rt, actor); got != 3 {
		t.Fatalf("count after successful migration = %d, want 3 (seed=%d)", got, seed)
	}
}

// TestChaosCancelDuringPartition cancels tasks that are stuck behind a
// full partition (every worker cut off from the head). The futures must
// fail with a typed Cancelled cause — not hang, not report a bare
// transport artifact — and after heal the cluster schedules normally.
func TestChaosCancelDuringPartition(t *testing.T) {
	rt, err := New(ClusterSpec{
		Servers: 3, ServerSlots: 2, ServerMemBytes: 64 << 20,
	}, Options{Recovery: RecoverLineage})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	rt.Registry.Register("spin", func(tctx *task.Context, _ [][]byte) ([][]byte, error) {
		tctx.Compute(100 * time.Millisecond)
		return [][]byte{[]byte("done")}, nil
	})
	checker := rt.ChaosChecker()

	seed := chaos.FlagSeed()
	_, faultable := rt.ChaosNodes()
	plan := &chaos.Plan{Seed: seed, Events: []chaos.Event{
		{Step: 1, Kind: chaos.EventPartition, Nodes: faultable},
		{Step: 2, Kind: chaos.EventHeal},
	}}
	rt.InstallPlan(plan)
	defer rt.HealChaos()
	ctx := context.Background()

	// Tasks start executing on the workers first; the partition then cuts
	// every worker off from the head while their kernels are mid-compute.
	var refs []idgen.ObjectID
	for i := 0; i < 4; i++ {
		refs = append(refs, rt.Submit(task.NewSpec(rt.Job(), "spin", nil, 1))[0])
	}
	time.Sleep(2 * time.Millisecond)
	rt.ApplyStep(ctx, plan, 1)
	rt.Cancel(refs...)

	getCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	for i, ref := range refs {
		_, err := rt.Get(getCtx, ref)
		if err == nil {
			t.Fatalf("task %d returned a value after cancel under partition (seed=%d)", i, seed)
		}
		if code := skaderr.CodeOf(err); code != skaderr.Cancelled {
			t.Fatalf("task %d failed with code %v, want Cancelled (seed=%d): %v", i, code, seed, err)
		}
	}
	rt.Drain()
	if vs := checker.Check(); len(vs) != 0 {
		t.Fatalf("invariant violations after cancel under partition (seed=%d): %v", seed, vs)
	}

	// Heal: the cluster must schedule again (dispatch marked every worker
	// dead while the partition held; heal revives them).
	rt.ApplyStep(ctx, plan, 2)
	ref := rt.Submit(task.NewSpec(rt.Job(), "spin", nil, 1))[0]
	if _, err := rt.Get(getCtx, ref); err != nil {
		t.Fatalf("post-heal task failed: %v (seed=%d)", err, seed)
	}
	rt.Drain()
}
