package runtime

import (
	"context"
	"strconv"
	"testing"
	"time"

	"skadi/internal/idgen"
	"skadi/internal/task"
)

// TestChaosKillsDuringFanOutFanIn runs a two-level DAG (24 leaf tasks
// feeding 4 aggregators) while worker nodes are killed mid-flight, and
// asserts that lineage recovery still produces every correct result —
// exercising retry-on-unreachable dispatch, transitive recovery plans,
// and Get-level replay together.
func TestChaosKillsDuringFanOutFanIn(t *testing.T) {
	rt, err := New(ClusterSpec{
		Servers: 6, ServerSlots: 2, ServerMemBytes: 128 << 20,
	}, Options{Recovery: RecoverLineage, TimeScale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	rt.Registry.Register("leaf", func(tctx *task.Context, args [][]byte) ([][]byte, error) {
		tctx.Compute(2 * time.Millisecond)
		n, err := strconv.Atoi(string(args[0]))
		if err != nil {
			return nil, err
		}
		return [][]byte{[]byte(strconv.Itoa(n * n))}, nil
	})
	rt.Registry.Register("agg", func(tctx *task.Context, args [][]byte) ([][]byte, error) {
		tctx.Compute(2 * time.Millisecond)
		total := 0
		for _, a := range args {
			n, err := strconv.Atoi(string(a))
			if err != nil {
				return nil, err
			}
			total += n
		}
		return [][]byte{[]byte(strconv.Itoa(total))}, nil
	})

	const leaves = 24
	const aggs = 4
	want := make([]int, aggs)
	leafRefs := make([]idgen.ObjectID, leaves)
	for i := 0; i < leaves; i++ {
		spec := task.NewSpec(rt.Job(), "leaf", []task.Arg{task.ValueArg([]byte(strconv.Itoa(i)))}, 1)
		leafRefs[i] = rt.Submit(spec)[0]
		want[i%aggs] += i * i
	}
	aggRefs := make([]idgen.ObjectID, aggs)
	for a := 0; a < aggs; a++ {
		var args []task.Arg
		for i := a; i < leaves; i += aggs {
			args = append(args, task.RefArg(leafRefs[i]))
		}
		aggRefs[a] = rt.Submit(task.NewSpec(rt.Job(), "agg", args, 1))[0]
	}

	// Chaos: kill two workers while the DAG is in flight, restart one.
	time.Sleep(3 * time.Millisecond)
	workers := rt.workerServers()
	rt.KillNode(workers[0])
	time.Sleep(2 * time.Millisecond)
	rt.KillNode(workers[1])
	rt.RestartNode(workers[0])

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for a, ref := range aggRefs {
		data, err := rt.Get(ctx, ref)
		if err != nil {
			t.Fatalf("agg %d after chaos: %v", a, err)
		}
		got, err := strconv.Atoi(string(data))
		if err != nil || got != want[a] {
			t.Errorf("agg %d = %q, want %d", a, data, want[a])
		}
	}
	rt.Drain()
}

// TestChaosRepeatedKillsSequential kills a different node between every
// read of a long chain, forcing repeated lineage replays.
func TestChaosRepeatedKillsSequential(t *testing.T) {
	rt, err := New(ClusterSpec{
		Servers: 4, ServerSlots: 2, ServerMemBytes: 128 << 20,
	}, Options{Recovery: RecoverLineage})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()
	rt.Registry.Register("inc", func(_ *task.Context, args [][]byte) ([][]byte, error) {
		n, err := strconv.Atoi(string(args[0]))
		if err != nil {
			return nil, err
		}
		return [][]byte{[]byte(strconv.Itoa(n + 1))}, nil
	})

	ctx := context.Background()
	prev, err := rt.Put([]byte("0"), "raw")
	if err != nil {
		t.Fatal(err)
	}
	var refs []idgen.ObjectID
	for i := 0; i < 6; i++ {
		spec := task.NewSpec(rt.Job(), "inc", []task.Arg{task.RefArg(prev)}, 1)
		prev = rt.Submit(spec)[0]
		refs = append(refs, prev)
		if _, err := rt.Get(ctx, prev); err != nil {
			t.Fatal(err)
		}
	}
	rt.Drain()

	workers := rt.workerServers()
	for round := 0; round < 3; round++ {
		victim := workers[round%len(workers)]
		rt.KillNode(victim)
		data, err := rt.Get(ctx, refs[len(refs)-1])
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if string(data) != "6" {
			t.Fatalf("round %d: result = %q, want 6", round, data)
		}
		rt.RestartNode(victim)
	}
}

// TestChaosDecommissionDuringFanOutFanIn runs the same two-level DAG while
// a worker is gracefully decommissioned (not killed) mid-flight. Unlike the
// kill test, recovery here must be invisible: the drain waits out in-flight
// tasks, live-migrates resident data, and zero tasks fail or replay.
func TestChaosDecommissionDuringFanOutFanIn(t *testing.T) {
	rt, err := New(ClusterSpec{
		Servers: 6, ServerSlots: 2, ServerMemBytes: 128 << 20,
	}, Options{Recovery: RecoverLineage, TimeScale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Shutdown()

	rt.Registry.Register("leaf", func(tctx *task.Context, args [][]byte) ([][]byte, error) {
		tctx.Compute(2 * time.Millisecond)
		n, err := strconv.Atoi(string(args[0]))
		if err != nil {
			return nil, err
		}
		return [][]byte{[]byte(strconv.Itoa(n * n))}, nil
	})
	rt.Registry.Register("agg", func(tctx *task.Context, args [][]byte) ([][]byte, error) {
		tctx.Compute(2 * time.Millisecond)
		total := 0
		for _, a := range args {
			n, err := strconv.Atoi(string(a))
			if err != nil {
				return nil, err
			}
			total += n
		}
		return [][]byte{[]byte(strconv.Itoa(total))}, nil
	})

	const leaves = 24
	const aggs = 4
	want := make([]int, aggs)
	leafRefs := make([]idgen.ObjectID, leaves)
	for i := 0; i < leaves; i++ {
		spec := task.NewSpec(rt.Job(), "leaf", []task.Arg{task.ValueArg([]byte(strconv.Itoa(i)))}, 1)
		leafRefs[i] = rt.Submit(spec)[0]
		want[i%aggs] += i * i
	}
	aggRefs := make([]idgen.ObjectID, aggs)
	for a := 0; a < aggs; a++ {
		var args []task.Arg
		for i := a; i < leaves; i += aggs {
			args = append(args, task.RefArg(leafRefs[i]))
		}
		aggRefs[a] = rt.Submit(task.NewSpec(rt.Job(), "agg", args, 1))[0]
	}

	// Chaos: shrink the pool by two workers while the DAG is in flight.
	time.Sleep(3 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	workers := rt.workerServers()
	for _, victim := range workers[:2] {
		if _, err := rt.Decommission(ctx, victim); err != nil {
			t.Fatalf("decommission %s: %v", victim.Short(), err)
		}
	}

	failed := 0
	for a, ref := range aggRefs {
		data, err := rt.Get(ctx, ref)
		if err != nil {
			failed++
			t.Errorf("agg %d after decommission: %v", a, err)
			continue
		}
		got, err := strconv.Atoi(string(data))
		if err != nil || got != want[a] {
			t.Errorf("agg %d = %q, want %d", a, data, want[a])
		}
	}
	if failed != 0 {
		t.Fatalf("%d tasks failed during graceful decommission, want 0", failed)
	}
	// Every leaf intermediate is also still readable: the drain moved them
	// rather than dropping them on the floor.
	for i, ref := range leafRefs {
		data, err := rt.Get(ctx, ref)
		if err != nil {
			t.Fatalf("leaf %d after decommission: %v", i, err)
		}
		if got, _ := strconv.Atoi(string(data)); got != i*i {
			t.Errorf("leaf %d = %q, want %d", i, data, i*i)
		}
	}
	if got := len(rt.workerServers()); got != len(workers)-2 {
		t.Errorf("worker count after shrink = %d, want %d", got, len(workers)-2)
	}
	rt.Drain()
}
