package runtime

import (
	"context"
	"testing"
	"time"

	"skadi/internal/idgen"
	"skadi/internal/scheduler"
	"skadi/internal/task"
)

func autoscaleRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt, err := New(ClusterSpec{
		Servers: 2, ServerSlots: 1, ServerMemBytes: 64 << 20,
	}, Options{TimeScale: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	rt.Registry.Register("work", func(tctx *task.Context, _ [][]byte) ([][]byte, error) {
		tctx.Compute(3 * time.Millisecond)
		return [][]byte{nil}, nil
	})
	return rt
}

func TestScaleUpAddsSchedulableWorker(t *testing.T) {
	rt := autoscaleRuntime(t)
	before := rt.ActiveWorkers()
	node, err := rt.ScaleUp(2, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if rt.ActiveWorkers() != before+1 {
		t.Errorf("workers = %d, want %d", rt.ActiveWorkers(), before+1)
	}
	// The new node actually executes tasks.
	spec := task.NewSpec(rt.Job(), "work", nil, 1)
	refs := rt.SubmitTo(node, spec)
	if _, err := rt.Get(context.Background(), refs[0]); err != nil {
		t.Fatal(err)
	}
}

func TestScaleDownCordonsIdleWorker(t *testing.T) {
	rt := autoscaleRuntime(t)
	before := rt.ActiveWorkers()
	node, ok := rt.ScaleDown()
	if !ok {
		t.Fatal("no idle worker found")
	}
	if rt.ActiveWorkers() != before-1 {
		t.Errorf("workers = %d, want %d", rt.ActiveWorkers(), before-1)
	}
	// Cordoned nodes stop receiving scheduled tasks but still serve data.
	id, err := rt.PutAt(node, []byte("resident"), "raw")
	if err != nil {
		t.Fatal(err)
	}
	data, err := rt.Get(context.Background(), id)
	if err != nil || string(data) != "resident" {
		t.Errorf("Get from cordoned node = %q, %v", data, err)
	}
	for i := 0; i < 6; i++ {
		spec := task.NewSpec(rt.Job(), "work", nil, 1)
		refs := rt.Submit(spec)
		if _, err := rt.Get(context.Background(), refs[0]); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.Raylet(node).Stats().TasksExecuted; got != 0 {
		t.Errorf("cordoned node executed %d tasks", got)
	}
}

func TestScaleUpReusesCordonedNode(t *testing.T) {
	rt := autoscaleRuntime(t)
	node, ok := rt.ScaleDown()
	if !ok {
		t.Fatal("no idle worker")
	}
	reused, err := rt.ScaleUp(1, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if reused != node {
		t.Errorf("ScaleUp provisioned a new node instead of un-cordoning %s", node.Short())
	}
}

func TestScaleDownSkipsBusyWorkers(t *testing.T) {
	rt := autoscaleRuntime(t)
	// Occupy both workers with slow tasks.
	var refs []idgen.ObjectID
	for _, rl := range rt.Raylets() {
		spec := task.NewSpec(rt.Job(), "work", nil, 1)
		spec.Duration = 50 * time.Millisecond
		refs = append(refs, rt.SubmitTo(rl.Node(), spec)[0])
	}
	time.Sleep(5 * time.Millisecond)
	if _, ok := rt.ScaleDown(); ok {
		t.Error("ScaleDown cordoned a busy worker")
	}
	ctx := context.Background()
	for _, r := range refs {
		if _, err := rt.Get(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAutoscalerLoopGrowsAndShrinks(t *testing.T) {
	rt := autoscaleRuntime(t)
	stop := rt.EnableAutoscaler(scheduler.AutoscalerConfig{
		MinNodes: 2, MaxNodes: 6,
		UpThreshold: 2, DownThreshold: 0.5, CooldownTicks: 2,
	}, 2*time.Millisecond, 1, 64<<20)
	defer stop()

	// Burst: 40 × 3 ms tasks over 2 × 1-slot workers ⇒ deep queue. Sample
	// the fleet size during the burst: by the time the last Get returns,
	// scale-down may already have started.
	peak := 2
	peakDone := make(chan struct{})
	go func() {
		defer close(peakDone)
		sawLoad := false
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			pending := rt.Pending()
			if pending > 0 {
				sawLoad = true
			}
			if n := rt.ActiveWorkers(); n > peak {
				peak = n
			}
			if sawLoad && pending == 0 {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	var refs []idgen.ObjectID
	for i := 0; i < 40; i++ {
		refs = append(refs, rt.Submit(task.NewSpec(rt.Job(), "work", nil, 1))[0])
	}
	ctx := context.Background()
	for _, r := range refs {
		if _, err := rt.Get(ctx, r); err != nil {
			t.Fatal(err)
		}
	}
	<-peakDone
	if peak <= 2 {
		t.Errorf("fleet did not grow under load: peak %d workers", peak)
	}
	// Idle: the fleet must shrink back toward MinNodes.
	deadline := time.Now().Add(2 * time.Second)
	for rt.ActiveWorkers() > 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := rt.ActiveWorkers(); got > 2 {
		t.Errorf("fleet did not shrink when idle: %d workers", got)
	}
	rt.Drain()
}

func TestPendingCounter(t *testing.T) {
	rt := autoscaleRuntime(t)
	if rt.Pending() != 0 {
		t.Fatalf("Pending = %d at start", rt.Pending())
	}
	spec := task.NewSpec(rt.Job(), "work", nil, 1)
	spec.Duration = 30 * time.Millisecond
	refs := rt.Submit(spec)
	time.Sleep(5 * time.Millisecond)
	if rt.Pending() != 1 {
		t.Errorf("Pending = %d mid-task", rt.Pending())
	}
	if _, err := rt.Get(context.Background(), refs[0]); err != nil {
		t.Fatal(err)
	}
	rt.Drain()
	if rt.Pending() != 0 {
		t.Errorf("Pending = %d after drain", rt.Pending())
	}
}
