package runtime

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"skadi/internal/chaos"
	"skadi/internal/idgen"
	"skadi/internal/scheduler"
	"skadi/internal/task"
)

// newMigrateRuntime boots a worker-only cluster (no GPUs, no mem blade) so
// migration tests control placement precisely.
func newMigrateRuntime(t *testing.T, servers int) *Runtime {
	t.Helper()
	rt, err := New(ClusterSpec{
		Servers: servers, ServerSlots: 4, ServerMemBytes: 64 << 20,
	}, Options{Policy: scheduler.RoundRobin, Recovery: RecoverLineage})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Shutdown)
	return rt
}

func TestMigrateActorStateContinuity(t *testing.T) {
	rt := newMigrateRuntime(t, 3)
	registerCounter(rt)

	workers := rt.workerServers()
	src, dst := workers[0], workers[1]
	actor, err := rt.CreateActorOn(src, "cpu")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if got := count(t, rt, actor); got != i {
			t.Fatalf("pre-migration count %d = %d", i, got)
		}
	}

	rep, err := rt.MigrateActor(context.Background(), actor, dst)
	if err != nil {
		t.Fatal(err)
	}
	if rep.From != src || rep.To != dst {
		t.Errorf("report route %s→%s, want %s→%s", rep.From.Short(), rep.To.Short(), src.Short(), dst.Short())
	}
	if rep.Bytes == 0 {
		t.Error("actor state transfer reported zero bytes")
	}
	if node, _ := rt.ActorNode(actor); node != dst {
		t.Errorf("actor pinned to %s, want %s", node.Short(), dst.Short())
	}
	// The counter continues exactly where it left off: the state shipped,
	// not a checkpoint.
	for i := 6; i <= 10; i++ {
		if got := count(t, rt, actor); got != i {
			t.Fatalf("post-migration count %d = %d", i, got)
		}
	}
}

// TestMigrateActorRedirectsStaleDispatch drives a submission through the
// source raylet's tombstone after cutover: the dispatch layer must follow
// the redirect rather than fail the task.
func TestMigrateActorRedirectsStaleDispatch(t *testing.T) {
	rt := newMigrateRuntime(t, 3)
	registerCounter(rt)

	workers := rt.workerServers()
	actor, err := rt.CreateActorOn(workers[0], "cpu")
	if err != nil {
		t.Fatal(err)
	}
	// Bounce the actor around the fleet; every hop leaves a tombstone and
	// every count() must land on the current home.
	n := 0
	for hop := 0; hop < 6; hop++ {
		n++
		if got := count(t, rt, actor); got != n {
			t.Fatalf("hop %d: count = %d, want %d", hop, got, n)
		}
		dst := workers[(hop+1)%len(workers)]
		if _, err := rt.MigrateActor(context.Background(), actor, dst); err != nil {
			t.Fatalf("hop %d: %v", hop, err)
		}
	}
	migratedIn := 0
	for _, rl := range rt.Raylets() {
		migratedIn += int(rl.Stats().ActorsMigratedIn)
	}
	if migratedIn != 6 {
		t.Errorf("ActorsMigratedIn total = %d, want 6", migratedIn)
	}
}

// TestConcurrentGetDuringObjectMigration races readers against a migrating
// object: every Get must resolve — possibly via the source's tombstone
// forward — and return the exact payload. Run under -race.
func TestConcurrentGetDuringObjectMigration(t *testing.T) {
	rt := newMigrateRuntime(t, 3)
	rt.Registry.Register("blob", func(_ *task.Context, args [][]byte) ([][]byte, error) {
		out := make([]byte, 32<<10)
		for i := range out {
			out[i] = args[0][0]
		}
		return [][]byte{out}, nil
	})

	workers := rt.workerServers()
	spec := task.NewSpec(rt.Job(), "blob", []task.Arg{task.ValueArg([]byte("x"))}, 1)
	id := rt.SubmitTo(workers[0], spec)[0]
	want, err := rt.Get(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	rt.Drain()
	// The driver holds a copy after the Get above; evict it so readers must
	// chase the migrating copy.
	if store := rt.Layer.Store(rt.driver); store != nil {
		_ = store.Delete(id)
		rt.Layer.ForgetLocation(rt.driver, id)
	}

	stop := make(chan struct{})
	errs := make(chan error, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				data, err := rt.Get(context.Background(), id)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(data, want) {
					errs <- context.DeadlineExceeded // sentinel; payload mismatch
					return
				}
				// Readers cache a driver copy; evict it again so the next
				// iteration goes back over the fabric.
				if store := rt.Layer.Store(rt.driver); store != nil {
					_ = store.Delete(id)
					rt.Layer.ForgetLocation(rt.driver, id)
				}
			}
		}()
	}
	for hop := 0; hop < 16; hop++ {
		from := workers[hop%2]
		to := workers[(hop+1)%2]
		if _, err := rt.MigrateObject(context.Background(), id, from, to); err != nil {
			t.Fatalf("hop %d %s→%s: %v", hop, from.Short(), to.Short(), err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("reader failed mid-migration: %v", err)
	}
	follows := int64(0)
	for _, rl := range rt.Raylets() {
		follows += rl.Stats().ObjectsMigratedOut
	}
	if follows == 0 {
		t.Error("no object migrations recorded on any raylet")
	}
}

func TestDecommissionStopsNodeAndPreservesData(t *testing.T) {
	rt := newMigrateRuntime(t, 4)
	registerCounter(rt)
	rt.Registry.Register("echo14", func(_ *task.Context, args [][]byte) ([][]byte, error) {
		return [][]byte{args[0]}, nil
	})

	workers := rt.workerServers()
	victim := workers[len(workers)-1]
	actor, err := rt.CreateActorOn(victim, "cpu")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		count(t, rt, actor)
	}
	var refs []idgen.ObjectID
	for i := 0; i < 5; i++ {
		spec := task.NewSpec(rt.Job(), "echo14", []task.Arg{task.ValueArg([]byte{byte('a' + i)})}, 1)
		refs = append(refs, rt.SubmitTo(victim, spec)[0])
	}
	rt.Drain()

	rep, err := rt.Decommission(context.Background(), victim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ActorsMoved != 1 {
		t.Errorf("ActorsMoved = %d, want 1", rep.ActorsMoved)
	}
	if rep.ObjectsMoved == 0 || rep.BytesMoved == 0 {
		t.Errorf("drain moved %d objects / %d bytes, want > 0", rep.ObjectsMoved, rep.BytesMoved)
	}

	// The node is actually gone: no raylet, not schedulable, cluster node
	// dead, caching layer detached.
	for _, rl := range rt.Raylets() {
		if rl.Node() == victim {
			t.Error("victim raylet still registered after Decommission")
		}
	}
	for _, n := range rt.workerServers() {
		if n == victim {
			t.Error("victim still listed as worker server")
		}
	}
	if n := rt.Cluster.Node(victim); n != nil && n.Alive() {
		t.Error("victim cluster node still alive")
	}
	if _, err := rt.Decommission(context.Background(), victim); err == nil {
		t.Error("second Decommission should fail: node is gone")
	}

	// Data and actor state both survived the shrink.
	for i, ref := range refs {
		data, err := rt.Get(context.Background(), ref)
		if err != nil || len(data) != 1 || data[0] != byte('a'+i) {
			t.Errorf("object %d after drain: %q, %v", i, data, err)
		}
	}
	if got := count(t, rt, actor); got != 4 {
		t.Errorf("counter after drain = %d, want 4", got)
	}
	if node, _ := rt.ActorNode(actor); node == victim {
		t.Error("actor still pinned to decommissioned node")
	}
}

// TestMigrateNeverRanActorPreservesCheckpoint covers the failover/drain
// interleaving: an actor runs (and checkpoints) at A, A dies and the actor
// is re-pinned to B, and B is migrated away from before the actor's next
// task runs there. The actor never executed at B, so the migration must
// not ship B's nonexistent state as if it were real — the actor's first
// task at the final destination has to restore the head checkpoint, not
// start over from empty state.
func TestMigrateNeverRanActorPreservesCheckpoint(t *testing.T) {
	rt := newMigrateRuntime(t, 4)
	registerCounter(rt)

	workers := rt.workerServers()
	src := workers[0]
	actor, err := rt.CreateActorOn(src, "cpu")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if got := count(t, rt, actor); got != i {
			t.Fatalf("pre-failure count %d = %d", i, got)
		}
	}

	// Node failure re-pins the actor onto a healthy node; no task runs
	// there before the drain below.
	rt.KillNode(src)
	mid, ok := rt.ActorNode(actor)
	if !ok || mid == src {
		t.Fatalf("actor not re-placed after kill: %v on %s", ok, mid.Short())
	}

	var dst idgen.NodeID
	for _, w := range rt.workerServers() {
		if w != mid && w != src {
			dst = w
			break
		}
	}
	if dst.IsNil() {
		t.Fatal("no destination worker available")
	}
	rep, err := rt.MigrateActor(context.Background(), actor, dst)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bytes != 0 {
		t.Errorf("never-ran actor shipped %d bytes of phantom state", rep.Bytes)
	}
	if node, _ := rt.ActorNode(actor); node != dst {
		t.Fatalf("actor pinned to %s, want %s", node.Short(), dst.Short())
	}

	// First task at the destination: checkpoint restore must still fire.
	if got := count(t, rt, actor); got != 4 {
		t.Errorf("count after migrating never-ran actor = %d, want 4 (checkpoint lost)", got)
	}
	if got := count(t, rt, actor); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
}

// TestMigrateActorRollback fails the transfer (dead destination) and checks
// the actor resumes at the source instead of wedging behind the freeze.
func TestMigrateActorRollback(t *testing.T) {
	rt := newMigrateRuntime(t, 3)
	registerCounter(rt)

	workers := rt.workerServers()
	src, dst := workers[0], workers[1]
	actor, err := rt.CreateActorOn(src, "cpu")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		count(t, rt, actor)
	}

	rt.Cluster.Kill(dst) // destination unreachable, raylet still registered
	if _, err := rt.MigrateActor(context.Background(), actor, dst); err == nil {
		t.Fatal("MigrateActor to a dead node should fail")
	}
	if node, _ := rt.ActorNode(actor); node != src {
		t.Errorf("actor moved to %s despite failed migration", node.Short())
	}
	// The rollback lifted the freeze: the actor serves again at the source.
	if got := count(t, rt, actor); got != 4 {
		t.Errorf("counter after rollback = %d, want 4", got)
	}
}

func TestSampleNodeGaugesAndRebalance(t *testing.T) {
	rt := newMigrateRuntime(t, 3)
	rt.Registry.Register("blob", func(_ *task.Context, args [][]byte) ([][]byte, error) {
		out := make([]byte, 64<<10)
		for i := range out {
			out[i] = args[0][0]
		}
		return [][]byte{out}, nil
	})

	workers := rt.workerServers()
	hot := workers[0]
	var ids []idgen.ObjectID
	for i := 0; i < 8; i++ {
		spec := task.NewSpec(rt.Job(), "blob", []task.Arg{task.ValueArg([]byte{byte(i)})}, 1)
		ids = append(ids, rt.SubmitTo(hot, spec)[0])
	}
	rt.Drain()

	loads := rt.SampleNodeGauges()
	if len(loads) != len(workers) {
		t.Fatalf("sampled %d nodes, want %d", len(loads), len(workers))
	}
	var hotLoad *scheduler.NodeLoad
	for i := range loads {
		if loads[i].ID == hot {
			hotLoad = &loads[i]
		}
	}
	if hotLoad == nil || hotLoad.ResidentBytes < 8*(64<<10) {
		t.Fatalf("hot node load = %+v", hotLoad)
	}
	if v := rt.Metrics.GaugeVec(GaugeResidentBytes).Values()[hot.Short()]; v != hotLoad.ResidentBytes {
		t.Errorf("gauge %s{%s} = %d, want %d", GaugeResidentBytes, hot.Short(), v, hotLoad.ResidentBytes)
	}

	moves, err := rt.Rebalance(context.Background(), scheduler.RebalanceConfig{HotFactor: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("rebalance planned no moves off the hot node")
	}
	after := rt.SampleNodeGauges()
	for _, l := range after {
		if l.ID == hot && l.ResidentBytes >= hotLoad.ResidentBytes {
			t.Errorf("hot node still holds %d bytes (was %d)", l.ResidentBytes, hotLoad.ResidentBytes)
		}
	}
	// Every object is still readable from wherever it landed.
	for i, id := range ids {
		data, err := rt.Get(context.Background(), id)
		if err != nil || len(data) != 64<<10 || data[0] != byte(i) {
			t.Errorf("object %d after rebalance: len=%d err=%v", i, len(data), err)
		}
	}
}

// A partitioned-away node must never be a rebalance spill target: bytes
// migrated onto it would strand behind the partition.
func TestRebalanceSkipsPartitionedNode(t *testing.T) {
	rt := newMigrateRuntime(t, 3)
	rt.Registry.Register("blob", func(_ *task.Context, args [][]byte) ([][]byte, error) {
		out := make([]byte, 64<<10)
		for i := range out {
			out[i] = args[0][0]
		}
		return [][]byte{out}, nil
	})

	workers := rt.workerServers()
	hot, parted := workers[0], workers[1]
	for i := 0; i < 8; i++ {
		spec := task.NewSpec(rt.Job(), "blob", []task.Arg{task.ValueArg([]byte{byte(i)})}, 1)
		rt.SubmitTo(hot, spec)
	}
	rt.Drain()

	rt.InstallPlan(&chaos.Plan{Seed: 1})
	defer rt.HealChaos()
	rt.Chaos().Partition([]idgen.NodeID{parted})

	var partedLoad *scheduler.NodeLoad
	loads := rt.SampleNodeGauges()
	for i := range loads {
		if loads[i].ID == parted {
			partedLoad = &loads[i]
		}
	}
	if partedLoad == nil || !partedLoad.Unreachable {
		t.Fatalf("partitioned node load = %+v, want Unreachable", partedLoad)
	}
	moves, err := rt.Rebalance(context.Background(), scheduler.RebalanceConfig{HotFactor: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) == 0 {
		t.Fatal("rebalance planned no moves off the hot node")
	}
	for _, mv := range moves {
		if mv.To == parted || mv.From == parted {
			t.Errorf("plan touches partitioned node: %v", mv)
		}
	}
}
