package runtime

import (
	"context"
	"sort"
	"time"

	"skadi/internal/caching"
	"skadi/internal/chaos"
	"skadi/internal/cluster"
	"skadi/internal/idgen"
)

// chaosctl.go wires the chaos engine into the runtime. The engine sits on
// the transport as an interposer for message faults, and KillNode /
// RestartNode route through it so every induced failure — scripted or
// ad-hoc — lands in one journal and gets the same fabric-endpoint
// semantics (in-flight chunked transfers to a crashed node fail typed).

// initChaos builds the engine and installs it on the transport. Called
// once from New; with no plan armed the interposer is a pass-through.
func (rt *Runtime) initChaos() {
	rt.chaosEng = chaos.NewEngine(rt.Cluster.Fabric, chaos.Hooks{})
	rt.Cluster.Transport.SetInterposer(rt.chaosEng)
}

// Chaos returns the runtime's chaos engine (always non-nil).
func (rt *Runtime) Chaos() *chaos.Engine { return rt.chaosEng }

// TaskError returns the recorded typed failure for a reference, nil if
// none. Invariant checkers use it to prove every unresolved future has a
// cause.
func (rt *Runtime) TaskError(id idgen.ObjectID) error { return rt.taskErr(id) }

// ChaosNodes returns every cluster node in insertion order — the index
// space chaos plan events use — plus the indices of the faultable nodes
// (worker servers; never the head, memory blade, or devices).
func (rt *Runtime) ChaosNodes() (all []idgen.NodeID, faultable []int) {
	rt.mu.Lock()
	hasRaylet := make(map[idgen.NodeID]bool, len(rt.raylets))
	for id := range rt.raylets {
		hasRaylet[id] = true
	}
	rt.mu.Unlock()
	for i, n := range rt.Cluster.Nodes() {
		all = append(all, n.ID)
		if n.Kind == cluster.Server && n.ID != rt.driver && hasRaylet[n.ID] {
			faultable = append(faultable, i)
		}
	}
	return all, faultable
}

// InstallPlan arms the engine with a plan over the current cluster. The
// caller drives events via ApplyStep or RunPlan; message rules are live
// from this moment.
func (rt *Runtime) InstallPlan(p *chaos.Plan) {
	nodes, _ := rt.ChaosNodes()
	rt.chaosEng.Install(p, nodes)
}

// ApplyStep applies every plan event tagged with the given step, in plan
// order. Tests script exact fault points with steps; RunPlan handles the
// timed events instead.
func (rt *Runtime) ApplyStep(ctx context.Context, p *chaos.Plan, step int) {
	for _, e := range p.Events {
		if e.Step == step && step != 0 {
			rt.applyChaosEvent(ctx, e)
		}
	}
}

// RunPlan installs the plan and plays out its timed events (Step == 0) on
// the wall clock, then heals: partitions clear, slow links reset, and
// nodes that are actually alive become schedulable again. Crashed nodes
// whose restart the plan omitted stay down — that is the plan's statement,
// not a leak.
func (rt *Runtime) RunPlan(ctx context.Context, p *chaos.Plan) {
	rt.InstallPlan(p)
	start := time.Now()
	evs := append([]chaos.Event(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	for _, e := range evs {
		if e.Step != 0 {
			continue
		}
		if d := time.Until(start.Add(e.At)); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				rt.HealChaos()
				return
			}
		}
		rt.applyChaosEvent(ctx, e)
	}
	rt.HealChaos()
}

// applyChaosEvent executes one plan event against the runtime.
func (rt *Runtime) applyChaosEvent(ctx context.Context, e chaos.Event) {
	resolve := func(idxs []int) []idgen.NodeID {
		var out []idgen.NodeID
		for _, i := range idxs {
			if id, ok := rt.chaosEng.NodeAt(i); ok {
				out = append(out, id)
			}
		}
		return out
	}
	switch e.Kind {
	case chaos.EventCrash:
		for _, id := range resolve(e.Nodes) {
			rt.KillNode(id)
		}
	case chaos.EventRestart:
		for _, id := range resolve(e.Nodes) {
			rt.RestartNode(id)
		}
	case chaos.EventPartition:
		rt.chaosEng.Partition(resolve(e.Nodes))
	case chaos.EventHeal:
		rt.chaosEng.HealPartition()
		rt.reviveReachable()
	case chaos.EventSlowClass:
		rt.chaosEng.SlowClass(e.Class, e.Factor)
	case chaos.EventDecommission:
		for _, id := range resolve(e.Nodes) {
			_, _ = rt.Decommission(ctx, id)
		}
	}
}

// HealChaos ends an episode: partitions and slow links clear, message
// rules disarm, and every node that is genuinely alive is made
// schedulable again. The last part matters because dispatch marks nodes
// dead on unreachable errors — under chaos a dropped message is
// indistinguishable from a dead node, so heal must undo those verdicts.
func (rt *Runtime) HealChaos() {
	rt.chaosEng.Uninstall()
	rt.reviveReachable()
}

// reviveReachable restores scheduling for alive, un-cordoned raylet nodes.
func (rt *Runtime) reviveReachable() {
	rt.mu.Lock()
	ids := make([]idgen.NodeID, 0, len(rt.raylets))
	for id := range rt.raylets {
		if id == rt.driver {
			continue
		}
		if _, parked := rt.autoscale.cordoned[id]; parked {
			continue
		}
		ids = append(ids, id)
	}
	rt.mu.Unlock()
	for _, id := range ids {
		if n := rt.Cluster.Node(id); n != nil && n.Alive() {
			rt.Sched.SetAlive(id, true)
			// Decentralized: a partition may have gossip-convicted a node
			// that never actually died; rejoining clears the verdict and
			// hands its key range back.
			rt.noteNodeAlive(id)
		}
	}
}

// ChaosChecker binds the six cross-subsystem invariants to this runtime,
// capturing the goroutine baseline now. Build it before injecting faults;
// call Check only after the episode quiesced (faults healed, Gets
// returned, Drain done).
func (rt *Runtime) ChaosChecker() *chaos.Checker {
	view := chaos.View{
		PendingFutures: rt.Head.Table.PendingIDs,
		FutureError:    rt.TaskError,
		Records:        rt.Head.Table.Records,
		HasCopy: func(node idgen.NodeID, id idgen.ObjectID) bool {
			if n := rt.Cluster.Node(node); n == nil || !n.Alive() {
				return false
			}
			st := rt.Layer.Store(node)
			return st != nil && st.Contains(id)
		},
		Redundant: rt.Layer.RecoverableWithout,
		Hygiene: func() []chaos.Hygiene {
			var out []chaos.Hygiene
			for _, rl := range rt.Raylets() {
				h := rl.MigrationHygiene()
				out = append(out, chaos.Hygiene{
					Node:                 rl.Node(),
					FrozenActors:         h.FrozenActors,
					HeldLocks:            h.HeldLocks,
					LiveActorTombstones:  h.LiveActorTombstones,
					LiveObjectTombstones: h.LiveObjectTombstones,
				})
			}
			return out
		},
		Tenants: func() []chaos.TenantAccount {
			if !rt.Tenancy.Enabled() {
				return nil
			}
			// Accounting concludes when dispatch goroutines exit, which can
			// trail the Get calls that released the episode; drain first so
			// the snapshot is a true quiesce view.
			rt.Drain()
			var out []chaos.TenantAccount
			for _, a := range rt.Tenancy.Accounts() {
				out = append(out, chaos.TenantAccount{
					Tenant:    a.Tenant,
					Submitted: a.Submitted,
					Admitted:  a.Admitted,
					Rejected:  a.Rejected,
					Completed: a.Completed,
					Failed:    a.Failed,
					InFlight:  a.InFlight,
					Queued:    a.Queued,
					Running:   a.Running,
				})
			}
			return out
		},
		Durability: func() *chaos.Durability {
			if rt.sharded == nil {
				return nil
			}
			st := rt.sharded.ReplicationStats()
			return &chaos.Durability{
				Enabled:           true,
				Promotions:        st.Promotions,
				Restored:          st.Restored,
				LostEntries:       st.Lost,
				Mismatches:        rt.sharded.ReplicaDivergence(),
				LineageRecoveries: uint64(rt.Metrics.Counter(MetricLineageRecoveries).Value()),
				// With the data plane replicating every object and the
				// metadata replicating every shard, a crash should never
				// force recomputation: promotion restores the directory and
				// a surviving copy serves the bytes.
				LineageForbidden: rt.opts.Caching.Mode == caching.ModeReplicate &&
					rt.opts.Recovery == RecoverLineage,
			}
		},
	}
	return chaos.NewChecker(view, rt.chaosEng)
}
