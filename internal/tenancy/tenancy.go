// Package tenancy is the multi-tenant serving control plane: tenants and
// jobs as first-class objects threaded through submit → schedule → exec.
//
// The runtime serves thousands of concurrent jobs from antagonistic
// tenants contending for worker slots, cache bytes, and fabric links
// ("Serverless End Game": disaggregation pays off only when the platform
// transparently multiplexes tenants over shared resources). This package
// supplies the three mechanisms that make sharing safe:
//
//   - Admission control: per-tenant token-bucket rate limiting plus a
//     bounded pending queue. A tenant over its bounds is rejected with a
//     typed skaderr.ResourceExhausted (fail-fast) or blocked at the submit
//     call (backpressure) — never an unbounded queue.
//   - Weighted fair-share scheduling: a DRF-style dominant-resource fair
//     scheduler layered over the placement scheduler. Worker slots are
//     granted to the waiting tenant with the highest priority band and,
//     within a band, the lowest weighted dominant share (workers and cache
//     bytes are the two resources). The scheme is work-conserving: free
//     slots go to whoever asks.
//   - Preemption: when slots are exhausted and a waiter's dominant share
//     is strictly below a running tenant's, one of the over-share tenant's
//     running tasks is revoked with skaderr.Preempted. The runtime's
//     cancel machinery interrupts the kernel mid-flight and the task
//     replays through the fair queue later — preemption is the payoff of
//     the cascading-cancellation control plane.
//
// Per-tenant quotas bound workers (MaxWorkers, enforced both here and at
// scheduler placement) and cache bytes (MaxCacheBytes, enforced on the
// caching layer's put path via the Reserve/Release quota hook, with
// per-tenant eviction pressure: a tenant over its byte quota evicts its
// own oldest objects before failing the put).
//
// The Controller is inert until the first tenant registers: with no
// tenants, every call is a pass-through, so single-job workloads pay
// nothing.
package tenancy

import (
	"context"
	"sort"
	"sync"
	"time"

	"skadi/internal/idgen"
	"skadi/internal/metrics"
	"skadi/internal/skaderr"
)

// Metric families maintained per tenant (label = tenant name). Rendered by
// `skadi -trace` next to the per-node gauges and read by experiment E19.
const (
	MetricQueued     = "tenant_queued"
	MetricRunning    = "tenant_running"
	MetricCacheBytes = "tenant_cache_bytes"
	MetricAdmitted   = "tenant_admitted"
	MetricRejected   = "tenant_admission_rejected"
	MetricPreempted  = "tenant_preempted"
	MetricCompleted  = "tenant_completed"
	MetricFailed     = "tenant_failed"
)

// ctxKey carries the tenant ID through a context.
type ctxKey struct{}

// blockKey carries the caller's backpressure choice through a context.
type blockKey struct{}

// ContextWith returns ctx tagged with the tenant ID. Everything submitted
// under the returned context is attributed to (and bounded by) that tenant.
func ContextWith(ctx context.Context, tenant string) context.Context {
	if tenant == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tenant)
}

// FromContext returns the tenant ID carried by ctx, if any.
func FromContext(ctx context.Context) (string, bool) {
	t, ok := ctx.Value(ctxKey{}).(string)
	return t, ok && t != ""
}

// WithBlock returns ctx tagged with the caller's backpressure choice:
// block=true makes an over-limit submit wait for admission (backpressure),
// block=false makes it fail fast with skaderr.ResourceExhausted. Without
// the tag, the tenant's configured default (Config.BlockOnFull) applies.
func WithBlock(ctx context.Context, block bool) context.Context {
	return context.WithValue(ctx, blockKey{}, block)
}

// blockFromContext returns the caller's backpressure choice, if tagged.
func blockFromContext(ctx context.Context) (bool, bool) {
	b, ok := ctx.Value(blockKey{}).(bool)
	return b, ok
}

// Config describes one tenant.
type Config struct {
	// Name identifies the tenant; it is the metric label and the wire ID.
	Name string
	// Weight scales the tenant's fair share (default 1). A weight-2 tenant
	// tolerates twice the usage of a weight-1 tenant before being
	// considered over-share.
	Weight float64
	// Priority is the tenant's band. Higher bands always win slot grants
	// over lower bands and may preempt them; equal bands compete by
	// dominant share.
	Priority int
	// Rate is the admission token-bucket refill rate in admissions per
	// second (0 = unlimited).
	Rate float64
	// Burst is the token-bucket depth (default: max(Rate, 1)).
	Burst float64
	// MaxPending bounds tasks admitted but not yet running (0 = unlimited).
	// Beyond it, submits block or fail fast per BlockOnFull / WithBlock.
	MaxPending int
	// MaxWorkers caps the tenant's concurrently running tasks
	// (0 = unlimited). Enforced at slot grant and at scheduler placement.
	MaxWorkers int
	// MaxCacheBytes caps the tenant's committed object bytes in the caching
	// layer (0 = unlimited). Enforced on the put path via Reserve.
	MaxCacheBytes int64
	// EvictOnQuota lets a tenant over MaxCacheBytes evict its own oldest
	// objects (per-tenant eviction pressure) instead of failing the put.
	EvictOnQuota bool
	// BlockOnFull makes over-limit submits block for admission by default
	// instead of failing fast. WithBlock on the submit context overrides.
	BlockOnFull bool
}

// Options configures the controller's global behaviour.
type Options struct {
	// FairShare gates worker-slot grants by dominant-resource fairness.
	// When false, slots are granted immediately (FIFO arrival order — the
	// E19 baseline arm).
	FairShare bool
	// Preemption lets an under-share waiter revoke an over-share tenant's
	// running task. Requires FairShare.
	Preemption bool
}

// Account is one tenant's accounting snapshot. The chaos checker's I6
// invariant requires the identity
//
//	Admitted == Completed + Failed + InFlight
//
// at quiesce (Failed includes cancelled and deadline-exceeded tasks;
// Rejected tasks were never admitted: Submitted == Admitted + Rejected).
type Account struct {
	Tenant    string
	Submitted int64
	Admitted  int64
	Rejected  int64
	Completed int64
	Failed    int64
	Preempted int64
	InFlight  int64
	Queued    int64
	Running   int64
	CacheBytes int64
}

// waiter is one parked Acquire call.
type waiter struct {
	ch      chan struct{}
	granted bool
}

// runningTask is one granted slot's preemption handle.
type runningTask struct {
	seq     uint64
	preempt func()
	// preemptable is false once the grant is released or while no cancel
	// hook is bound yet but the task already asked not to be (gang tasks).
	taken bool
}

// tenant is the controller's per-tenant state.
type tenant struct {
	cfg Config

	// Token bucket.
	tokens     float64
	lastRefill time.Time

	// Admission waiters are woken by a close-and-replace broadcast channel
	// whenever queued shrinks or tokens refill (lost-wakeup-free: take the
	// channel before re-checking).
	admitCh chan struct{}

	// Slot state.
	queued  int64 // admitted, not yet running
	running int64
	waiters []*waiter // FIFO
	tasks   map[idgen.TaskID]*runningTask

	// Cache-byte quota state. objects tracks reserved logical bytes by
	// object; evictOrder is insertion (oldest-first) order for per-tenant
	// eviction pressure.
	cacheBytes int64
	objects    map[idgen.ObjectID]int64
	evictOrder []idgen.ObjectID

	// Accounting.
	submitted, admitted, rejected   int64
	completed, failed, preempted    int64
}

// Controller is the multi-tenant control plane. It is safe for concurrent
// use. The zero Controller is not usable; construct with NewController.
type Controller struct {
	mu      sync.Mutex
	opts    Options
	tenants map[string]*tenant
	// enabled flips on first RegisterTenant; before that every path is a
	// pass-through.
	enabled bool

	totalSlots      int
	totalCacheBytes int64
	running         int64 // across all tenants

	grantSeq uint64

	// objectTenant maps reserved objects back to their tenant for Release.
	objectTenant map[idgen.ObjectID]string

	// evictor frees an object cluster-wide (ownership + cache + lineage);
	// installed by the runtime. Nil disables eviction pressure.
	evictor func(idgen.ObjectID)

	now func() time.Time

	reg *metrics.Registry
}

// NewController returns an inert controller; it activates when the first
// tenant registers. reg may be nil (metrics are skipped).
func NewController(opts Options, reg *metrics.Registry) *Controller {
	return &Controller{
		opts:         opts,
		tenants:      make(map[string]*tenant),
		objectTenant: make(map[idgen.ObjectID]string),
		now:          time.Now,
		reg:          reg,
	}
}

// SetClock injects a time source (tests).
func (c *Controller) SetClock(now func() time.Time) {
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}

// SetEvictor installs the cluster-wide object free hook used for
// per-tenant eviction pressure (the runtime installs Free).
func (c *Controller) SetEvictor(f func(idgen.ObjectID)) {
	c.mu.Lock()
	c.evictor = f
	c.mu.Unlock()
}

// Configure replaces the controller's global fair-share/preemption options.
func (c *Controller) Configure(opts Options) {
	c.mu.Lock()
	c.opts = opts
	c.mu.Unlock()
}

// AddCapacity grows the cluster capacity the fair-share scheduler divides:
// worker slots and cache bytes. The runtime calls it as raylets register.
func (c *Controller) AddCapacity(slots int, cacheBytes int64) {
	c.mu.Lock()
	c.totalSlots += slots
	c.totalCacheBytes += cacheBytes
	c.wakeBestLocked()
	c.mu.Unlock()
}

// Capacity returns the registered (slots, cacheBytes) capacity.
func (c *Controller) Capacity() (int, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalSlots, c.totalCacheBytes
}

// RegisterTenant registers (or reconfigures) a tenant and activates the
// controller.
func (c *Controller) RegisterTenant(cfg Config) error {
	if cfg.Name == "" {
		return skaderr.New(skaderr.FailedPrecondition, "tenancy: tenant needs a name")
	}
	if cfg.Weight <= 0 {
		cfg.Weight = 1
	}
	if cfg.Burst <= 0 {
		cfg.Burst = cfg.Rate
		if cfg.Burst < 1 {
			cfg.Burst = 1
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.tenants[cfg.Name]; ok {
		st.cfg = cfg
		return nil
	}
	c.tenants[cfg.Name] = &tenant{
		cfg:        cfg,
		tokens:     cfg.Burst,
		lastRefill: c.now(),
		admitCh:    make(chan struct{}),
		tasks:      make(map[idgen.TaskID]*runningTask),
		objects:    make(map[idgen.ObjectID]int64),
	}
	c.enabled = true
	return nil
}

// Enabled reports whether any tenant is registered.
func (c *Controller) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

// lookupLocked returns the tenant's state; unknown tenants (and the empty
// tenant) get a permissive default registration so accounting still
// balances for unattributed work once the controller is active.
func (c *Controller) lookupLocked(name string) *tenant {
	if name == "" {
		name = "default"
	}
	st, ok := c.tenants[name]
	if !ok {
		st = &tenant{
			cfg:        Config{Name: name, Weight: 1, Burst: 1},
			tokens:     1,
			lastRefill: c.now(),
			admitCh:    make(chan struct{}),
			tasks:      make(map[idgen.TaskID]*runningTask),
			objects:    make(map[idgen.ObjectID]int64),
		}
		c.tenants[name] = st
	}
	return st
}

// refillLocked advances st's token bucket to now.
func (c *Controller) refillLocked(st *tenant) {
	if st.cfg.Rate <= 0 {
		return
	}
	now := c.now()
	dt := now.Sub(st.lastRefill).Seconds()
	if dt > 0 {
		st.tokens += dt * st.cfg.Rate
		if st.tokens > st.cfg.Burst {
			st.tokens = st.cfg.Burst
		}
		st.lastRefill = now
	}
}

// notifyAdmitLocked wakes every admission waiter of st.
func (c *Controller) notifyAdmitLocked(st *tenant) {
	close(st.admitCh)
	st.admitCh = make(chan struct{})
}

// ErrAdmission is the typed rejection for an over-limit submit.
func errAdmission(tenant, what string) error {
	return skaderr.New(skaderr.ResourceExhausted,
		"tenancy: tenant %q %s", tenant, what)
}

// Admit applies admission control for one task submission by tenant. It
// returns nil immediately when the controller is inert or the tenant is
// within bounds. Over bounds, it blocks for admission (backpressure) when
// the context or tenant config asks for it, else fails fast with a typed
// skaderr.ResourceExhausted. A nil return means the task was admitted and
// MUST be concluded with exactly one TaskDone call.
func (c *Controller) Admit(ctx context.Context, name string) error {
	c.mu.Lock()
	if !c.enabled {
		c.mu.Unlock()
		return nil
	}
	st := c.lookupLocked(name)
	st.submitted++
	block := st.cfg.BlockOnFull
	if b, ok := blockFromContext(ctx); ok {
		block = b
	}
	for {
		c.refillLocked(st)
		overQueue := st.cfg.MaxPending > 0 && st.queued >= int64(st.cfg.MaxPending)
		overRate := st.cfg.Rate > 0 && st.tokens < 1
		if !overQueue && !overRate {
			if st.cfg.Rate > 0 {
				st.tokens--
			}
			st.queued++
			st.admitted++
			c.gaugeLocked(st, MetricQueued, st.queued)
			c.counterLocked(st, MetricAdmitted).Inc()
			c.mu.Unlock()
			return nil
		}
		if !block {
			st.rejected++
			c.counterLocked(st, MetricRejected).Inc()
			c.mu.Unlock()
			what := "pending queue full"
			if overRate && !overQueue {
				what = "admission rate exceeded"
			}
			return errAdmission(st.cfg.Name, what)
		}
		// Backpressure: wait for queue space or the next token, whichever
		// the submit is short of. Take the broadcast channel BEFORE
		// unlocking so a concurrent release cannot be lost.
		admitCh := st.admitCh
		var tokenWait <-chan time.Time
		var timer *time.Timer
		if overRate && st.cfg.Rate > 0 {
			need := (1 - st.tokens) / st.cfg.Rate
			timer = time.NewTimer(time.Duration(need * float64(time.Second)))
			tokenWait = timer.C
		}
		c.mu.Unlock()
		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			c.mu.Lock()
			st.rejected++
			c.counterLocked(st, MetricRejected).Inc()
			c.mu.Unlock()
			return skaderr.Mark(skaderr.CodeOf(ctx.Err()), ctx.Err())
		case <-admitCh:
			if timer != nil {
				timer.Stop()
			}
		case <-tokenWait:
		}
		c.mu.Lock()
	}
}

// shareLocked computes st's weighted dominant share: the max over the
// worker and cache-byte resources of usage/(weight·capacity).
func (c *Controller) shareLocked(st *tenant) float64 {
	share := 0.0
	if c.totalSlots > 0 {
		if s := float64(st.running) / (st.cfg.Weight * float64(c.totalSlots)); s > share {
			share = s
		}
	}
	if c.totalCacheBytes > 0 {
		if s := float64(st.cacheBytes) / (st.cfg.Weight * float64(c.totalCacheBytes)); s > share {
			share = s
		}
	}
	return share
}

// Grant is one granted worker slot. Release it exactly once. BindCancel
// installs the preemption hook that revokes the running attempt.
type Grant struct {
	c  *Controller
	st *tenant
	id idgen.TaskID

	mu        sync.Mutex
	released  bool
	preempted bool
	cancel    func(error)
}

// preemptedCause is the typed revocation preemption delivers.
func preemptedCause(tenant string) error {
	return skaderr.New(skaderr.Preempted, "tenancy: tenant %q task preempted", tenant)
}

// BindCancel installs the attempt's cancel function. If the grant was
// preempted before the hook was bound, the cancel fires immediately — a
// preemption can race the gap between slot grant and exec start.
func (g *Grant) BindCancel(cancel func(error)) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.cancel = cancel
	fire := g.preempted
	g.mu.Unlock()
	if fire && cancel != nil {
		cancel(preemptedCause(g.st.cfg.Name))
	}
}

// preempt revokes the grant's running attempt. Called with c.mu held.
func (g *Grant) preempt() {
	g.mu.Lock()
	if g.preempted || g.released {
		g.mu.Unlock()
		return
	}
	g.preempted = true
	cancel := g.cancel
	g.mu.Unlock()
	if cancel != nil {
		cancel(preemptedCause(g.st.cfg.Name))
	}
}

// Release returns the slot and hands it to the best waiter.
func (g *Grant) Release() {
	if g == nil {
		return
	}
	g.mu.Lock()
	if g.released {
		g.mu.Unlock()
		return
	}
	g.released = true
	g.mu.Unlock()
	c := g.c
	c.mu.Lock()
	g.st.running--
	c.running--
	delete(g.st.tasks, g.id)
	c.gaugeLocked(g.st, MetricRunning, g.st.running)
	c.wakeBestLocked()
	c.mu.Unlock()
}

// canRunLocked reports whether st may take a slot now (hard limits only;
// fairness is the wake order's job).
func (c *Controller) canRunLocked(st *tenant) bool {
	if st.cfg.MaxWorkers > 0 && st.running >= int64(st.cfg.MaxWorkers) {
		return false
	}
	return c.totalSlots == 0 || c.running < int64(c.totalSlots)
}

// grantLocked accounts a slot grant to st for task id.
func (c *Controller) grantLocked(st *tenant, id idgen.TaskID, g *Grant) {
	st.queued--
	st.running++
	c.running++
	c.grantSeq++
	st.tasks[id] = &runningTask{seq: c.grantSeq, preempt: g.preempt, taken: true}
	c.gaugeLocked(st, MetricQueued, st.queued)
	c.gaugeLocked(st, MetricRunning, st.running)
	c.notifyAdmitLocked(st)
}

// wakeBestLocked hands free slots to waiters: highest priority band first,
// then lowest weighted dominant share (DRF), FIFO within a tenant.
func (c *Controller) wakeBestLocked() {
	for {
		var best *tenant
		var bestShare float64
		for _, st := range c.tenants {
			if len(st.waiters) == 0 || !c.canRunLocked(st) {
				continue
			}
			share := c.shareLocked(st)
			if best == nil ||
				st.cfg.Priority > best.cfg.Priority ||
				(st.cfg.Priority == best.cfg.Priority && share < bestShare) {
				best, bestShare = st, share
			}
		}
		if best == nil || (c.totalSlots > 0 && c.running >= int64(c.totalSlots)) {
			return
		}
		w := best.waiters[0]
		best.waiters = best.waiters[1:]
		w.granted = true
		close(w.ch)
		// The grant is accounted by the woken Acquire; reserve the slot here
		// so the loop doesn't over-grant. Acquire completes the bookkeeping.
		best.running++
		c.running++
	}
}

// tryPreemptLocked finds the over-share victim for waiter st and revokes
// one of its running tasks (the most recently granted, minimizing wasted
// work). Returns true if a preemption was fired.
func (c *Controller) tryPreemptLocked(st *tenant) bool {
	if !c.opts.Preemption {
		return false
	}
	myShare := c.shareLocked(st)
	var victim *tenant
	var victimShare float64
	for _, v := range c.tenants {
		if v == st || v.running == 0 || v.cfg.Priority > st.cfg.Priority {
			continue
		}
		share := c.shareLocked(v)
		// Same band: preempt only a strictly over-share tenant. Lower band:
		// always preemptible by a higher band with demand.
		if v.cfg.Priority == st.cfg.Priority && share <= myShare {
			continue
		}
		if victim == nil || share > victimShare {
			victim, victimShare = v, share
		}
	}
	if victim == nil {
		return false
	}
	var newest *runningTask
	for _, rt := range victim.tasks {
		if rt.taken && (newest == nil || rt.seq > newest.seq) {
			newest = rt
		}
	}
	if newest == nil {
		return false
	}
	newest.taken = false // fire at most once per grant
	victim.preempted++
	c.counterLocked(victim, MetricPreempted).Inc()
	// The preempt hook cancels the attempt context; run it without c.mu to
	// keep lock order simple (Grant.preempt takes only the grant's lock).
	go newest.preempt()
	return true
}

// Acquire blocks until tenant name may run one more task, per fair share,
// priority bands, and worker quotas. The returned Grant must be Released
// exactly once; bind the attempt's cancel with BindCancel so the task is
// preemptible. A nil Grant (with nil error) means the controller is inert.
func (c *Controller) Acquire(ctx context.Context, name string, id idgen.TaskID) (*Grant, error) {
	c.mu.Lock()
	if !c.enabled {
		c.mu.Unlock()
		return nil, nil
	}
	st := c.lookupLocked(name)
	g := &Grant{c: c, st: st, id: id}
	// Fast path: no contention (or fair-share disabled: FIFO grants).
	if !c.opts.FairShare || (c.noWaitersLocked() && c.canRunLocked(st)) {
		c.grantLocked(st, id, g)
		c.mu.Unlock()
		return g, nil
	}
	w := &waiter{ch: make(chan struct{})}
	st.waiters = append(st.waiters, w)
	// A slot may be free right now (transient: a release raced our
	// enqueue); let the fair wake order decide who gets it.
	c.wakeBestLocked()
	if !w.granted && (c.totalSlots == 0 || c.running >= int64(c.totalSlots)) {
		c.tryPreemptLocked(st)
	}
	c.mu.Unlock()

	select {
	case <-w.ch:
		// Slot was reserved by wakeBestLocked; finish the bookkeeping.
		c.mu.Lock()
		st.queued--
		c.grantSeq++
		st.tasks[id] = &runningTask{seq: c.grantSeq, preempt: g.preempt, taken: true}
		c.gaugeLocked(st, MetricQueued, st.queued)
		c.gaugeLocked(st, MetricRunning, st.running)
		c.notifyAdmitLocked(st)
		c.mu.Unlock()
		return g, nil
	case <-ctx.Done():
		c.mu.Lock()
		if w.granted {
			// The grant raced the cancellation; take it — the caller's next
			// cancellation checkpoint will release it.
			st.queued--
			c.grantSeq++
			st.tasks[id] = &runningTask{seq: c.grantSeq, preempt: g.preempt, taken: true}
			c.gaugeLocked(st, MetricQueued, st.queued)
			c.gaugeLocked(st, MetricRunning, st.running)
			c.notifyAdmitLocked(st)
			c.mu.Unlock()
			return g, nil
		}
		for i, cand := range st.waiters {
			if cand == w {
				st.waiters = append(st.waiters[:i], st.waiters[i+1:]...)
				break
			}
		}
		c.mu.Unlock()
		return nil, skaderr.Mark(skaderr.CodeOf(ctx.Err()), ctx.Err())
	}
}

// noWaitersLocked reports whether no tenant has a parked Acquire.
func (c *Controller) noWaitersLocked() bool {
	for _, st := range c.tenants {
		if len(st.waiters) > 0 {
			return false
		}
	}
	return true
}

// Requeue returns a task to the pending queue between execution attempts
// (preemption replay, migration redirect, node-failure retry): the task is
// queued again until its next slot grant.
func (c *Controller) Requeue(name string) {
	c.mu.Lock()
	if c.enabled {
		st := c.lookupLocked(name)
		st.queued++
		c.gaugeLocked(st, MetricQueued, st.queued)
	}
	c.mu.Unlock()
}

// Track accounts a task that bypasses admission. Gang members use it:
// their slots are reserved atomically by the placement scheduler, and
// gating individual members on admission could deadlock a gang against
// itself, so gangs are exempt from admission but not from accounting. The
// task still concludes through TaskDone.
func (c *Controller) Track(name string) {
	c.mu.Lock()
	if c.enabled {
		st := c.lookupLocked(name)
		st.submitted++
		st.admitted++
		st.queued++
		c.gaugeLocked(st, MetricQueued, st.queued)
		c.counterLocked(st, MetricAdmitted).Inc()
	}
	c.mu.Unlock()
}

// GangStarted accounts a gang member's slot occupancy. Gang slots are
// reserved by the placement scheduler rather than granted by Acquire, but
// they consume the same physical workers, so they count toward the
// tenant's running usage (and thus its dominant share) and the global
// pool — a tenant hogging slots via gangs is deprioritized for singles.
func (c *Controller) GangStarted(name string) {
	c.mu.Lock()
	if c.enabled {
		st := c.lookupLocked(name)
		st.queued--
		st.running++
		c.running++
		c.gaugeLocked(st, MetricQueued, st.queued)
		c.gaugeLocked(st, MetricRunning, st.running)
		c.notifyAdmitLocked(st)
	}
	c.mu.Unlock()
}

// GangFinished releases a gang member's slot accounting.
func (c *Controller) GangFinished(name string) {
	c.mu.Lock()
	if c.enabled {
		st := c.lookupLocked(name)
		st.running--
		c.running--
		c.gaugeLocked(st, MetricRunning, st.running)
		c.wakeBestLocked()
	}
	c.mu.Unlock()
}

// TaskDone concludes one admitted (or Tracked) task's lifecycle for
// accounting: completed on success, failed otherwise. Exactly one call per
// successful Admit or Track. dequeued reports whether the task has left
// the pending queue (it got a slot grant it did not give back via
// Requeue); a task that never ran still concludes here and its queued
// count is dropped.
func (c *Controller) TaskDone(name string, dequeued, ok bool) {
	c.mu.Lock()
	if !c.enabled {
		c.mu.Unlock()
		return
	}
	st := c.lookupLocked(name)
	if !dequeued {
		// Admitted but never ran: leave the pending queue.
		st.queued--
		c.gaugeLocked(st, MetricQueued, st.queued)
		c.notifyAdmitLocked(st)
	}
	if ok {
		st.completed++
		c.counterLocked(st, MetricCompleted).Inc()
	} else {
		st.failed++
		c.counterLocked(st, MetricFailed).Inc()
	}
	c.mu.Unlock()
}

// WorkerQuota reports whether tenant name may start one more task under
// its hard MaxWorkers quota — the scheduler consults it at placement (the
// second enforcement point, covering pinned and gang placements that
// bypass the slot gate).
func (c *Controller) WorkerQuota(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled || name == "" {
		return nil
	}
	st := c.lookupLocked(name)
	if st.cfg.MaxWorkers > 0 && st.running > int64(st.cfg.MaxWorkers) {
		return skaderr.New(skaderr.ResourceExhausted,
			"tenancy: tenant %q over worker quota (%d)", name, st.cfg.MaxWorkers)
	}
	return nil
}

// Reserve charges n logical bytes of cache quota for object id to the
// tenant carried by ctx. Implements the caching layer's Quota hook on the
// put path. Over quota, the tenant's own oldest objects are evicted
// (EvictOnQuota) until the reservation fits, else the put fails typed.
// Reserving an already-reserved object is a no-op (same-ID re-puts).
func (c *Controller) Reserve(ctx context.Context, id idgen.ObjectID, n int64) error {
	name, _ := FromContext(ctx)
	c.mu.Lock()
	if !c.enabled || name == "" {
		c.mu.Unlock()
		return nil
	}
	st := c.lookupLocked(name)
	if _, ok := st.objects[id]; ok {
		c.mu.Unlock()
		return nil
	}
	var evict []idgen.ObjectID
	if st.cfg.MaxCacheBytes > 0 && st.cacheBytes+n > st.cfg.MaxCacheBytes {
		if !st.cfg.EvictOnQuota || c.evictor == nil {
			c.mu.Unlock()
			return skaderr.New(skaderr.ResourceExhausted,
				"tenancy: tenant %q over cache quota (%d + %d > %d bytes)",
				name, st.cacheBytes, n, st.cfg.MaxCacheBytes)
		}
		// Per-tenant eviction pressure: this tenant's oldest objects go
		// first; other tenants' bytes are untouchable.
		need := st.cacheBytes + n - st.cfg.MaxCacheBytes
		for _, old := range st.evictOrder {
			if need <= 0 {
				break
			}
			if sz, ok := st.objects[old]; ok && old != id {
				evict = append(evict, old)
				need -= sz
			}
		}
		if need > 0 {
			c.mu.Unlock()
			return skaderr.New(skaderr.ResourceExhausted,
				"tenancy: tenant %q cache quota: object (%d bytes) exceeds evictable space", name, n)
		}
	}
	st.objects[id] = n
	st.evictOrder = append(st.evictOrder, id)
	st.cacheBytes += n
	c.objectTenant[id] = st.cfg.Name
	c.gaugeLocked(st, MetricCacheBytes, st.cacheBytes)
	evictor := c.evictor
	c.mu.Unlock()
	// Evict outside the lock: the evictor re-enters Release via the
	// caching layer's delete path.
	for _, old := range evict {
		evictor(old)
	}
	return nil
}

// Release returns object id's reserved bytes to its tenant's quota. The
// caching layer calls it when the object's last copy is deleted.
func (c *Controller) Release(id idgen.ObjectID) {
	c.mu.Lock()
	name, ok := c.objectTenant[id]
	if !ok {
		c.mu.Unlock()
		return
	}
	delete(c.objectTenant, id)
	st := c.lookupLocked(name)
	if sz, ok := st.objects[id]; ok {
		st.cacheBytes -= sz
		delete(st.objects, id)
		c.gaugeLocked(st, MetricCacheBytes, st.cacheBytes)
	}
	for i, o := range st.evictOrder {
		if o == id {
			st.evictOrder = append(st.evictOrder[:i], st.evictOrder[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
}

// CacheBytes returns tenant name's reserved cache bytes.
func (c *Controller) CacheBytes(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return 0
	}
	return c.lookupLocked(name).cacheBytes
}

// Accounts snapshots every tenant's accounting, sorted by name.
func (c *Controller) Accounts() []Account {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Account, 0, len(c.tenants))
	for _, st := range c.tenants {
		out = append(out, Account{
			Tenant:     st.cfg.Name,
			Submitted:  st.submitted,
			Admitted:   st.admitted,
			Rejected:   st.rejected,
			Completed:  st.completed,
			Failed:     st.failed,
			Preempted:  st.preempted,
			InFlight:   st.admitted - st.completed - st.failed,
			Queued:     st.queued,
			Running:    st.running,
			CacheBytes: st.cacheBytes,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Account returns one tenant's snapshot.
func (c *Controller) Account(name string) Account {
	for _, a := range c.Accounts() {
		if a.Tenant == name {
			return a
		}
	}
	return Account{Tenant: name}
}

// gaugeLocked sets a per-tenant gauge (no-op without a registry).
func (c *Controller) gaugeLocked(st *tenant, fam string, v int64) {
	if c.reg != nil {
		c.reg.GaugeVec(fam).With(st.cfg.Name).Set(v)
	}
}

// counterLocked returns a per-tenant counter (never nil; a discard counter
// without a registry).
func (c *Controller) counterLocked(st *tenant, fam string) *metrics.Counter {
	if c.reg != nil {
		return c.reg.CounterVec(fam).With(st.cfg.Name)
	}
	return &discard
}

var discard metrics.Counter
