package tenancy

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"skadi/internal/idgen"
	"skadi/internal/metrics"
	"skadi/internal/skaderr"
)

func newTestController(opts Options) *Controller {
	return NewController(opts, metrics.NewRegistry())
}

func TestInertPassThrough(t *testing.T) {
	c := newTestController(Options{FairShare: true, Preemption: true})
	ctx := context.Background()
	if err := c.Admit(ctx, "anyone"); err != nil {
		t.Fatalf("inert Admit: %v", err)
	}
	g, err := c.Acquire(ctx, "anyone", idgen.Next())
	if err != nil || g != nil {
		t.Fatalf("inert Acquire: g=%v err=%v", g, err)
	}
	if err := c.Reserve(ContextWith(ctx, "anyone"), idgen.Next(), 1<<20); err != nil {
		t.Fatalf("inert Reserve: %v", err)
	}
}

func TestAdmissionTokenBucket(t *testing.T) {
	c := newTestController(Options{})
	now := time.Unix(0, 0)
	c.SetClock(func() time.Time { return now })
	if err := c.RegisterTenant(Config{Name: "a", Rate: 10, Burst: 2}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Burst of 2 admits, third is over rate.
	for i := 0; i < 2; i++ {
		if err := c.Admit(ctx, "a"); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	err := c.Admit(ctx, "a")
	if skaderr.CodeOf(err) != skaderr.ResourceExhausted {
		t.Fatalf("want ResourceExhausted, got %v", err)
	}
	// Refill one token after 100ms at 10/s.
	now = now.Add(100 * time.Millisecond)
	if err := c.Admit(ctx, "a"); err != nil {
		t.Fatalf("post-refill admit: %v", err)
	}
	a := c.Account("a")
	if a.Admitted != 3 || a.Rejected != 1 || a.Submitted != 4 {
		t.Fatalf("accounting: %+v", a)
	}
}

func TestAdmissionBoundedQueueFailFast(t *testing.T) {
	c := newTestController(Options{})
	if err := c.RegisterTenant(Config{Name: "a", MaxPending: 2}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := c.Admit(ctx, "a"); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	err := c.Admit(ctx, "a")
	if skaderr.CodeOf(err) != skaderr.ResourceExhausted {
		t.Fatalf("want typed ResourceExhausted, got %v", err)
	}
	// Concluding one admitted task frees queue space.
	c.TaskDone("a", false, false)
	if err := c.Admit(ctx, "a"); err != nil {
		t.Fatalf("post-drain admit: %v", err)
	}
	if q := c.Account("a").Queued; q != 2 {
		t.Fatalf("queued = %d, want 2 (bounded)", q)
	}
}

func TestAdmissionBackpressureBlocks(t *testing.T) {
	c := newTestController(Options{})
	if err := c.RegisterTenant(Config{Name: "a", MaxPending: 1, BlockOnFull: true}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := c.Admit(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	admitted := make(chan error, 1)
	go func() { admitted <- c.Admit(ctx, "a") }()
	select {
	case err := <-admitted:
		t.Fatalf("blocked Admit returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	c.TaskDone("a", false, true) // drains the queue, wakes the waiter
	select {
	case err := <-admitted:
		if err != nil {
			t.Fatalf("woken Admit: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Admit never woke after queue drain")
	}
}

func TestAdmissionBlockRespectsContext(t *testing.T) {
	c := newTestController(Options{})
	if err := c.RegisterTenant(Config{Name: "a", MaxPending: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Admit(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	// WithBlock overrides the tenant's fail-fast default; a cancelled ctx
	// unblocks with the ctx's code.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Admit(WithBlock(ctx, true), "a") }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled Admit returned nil")
		}
		if !errors.Is(err, context.Canceled) && skaderr.CodeOf(err) != skaderr.Cancelled {
			t.Fatalf("want cancellation, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Admit ignored context cancellation")
	}
}

// grantFor admits and acquires one slot for tenant name.
func grantFor(t *testing.T, c *Controller, name string) *Grant {
	t.Helper()
	if err := c.Admit(context.Background(), name); err != nil {
		t.Fatalf("admit %s: %v", name, err)
	}
	g, err := c.Acquire(context.Background(), name, idgen.Next())
	if err != nil {
		t.Fatalf("acquire %s: %v", name, err)
	}
	return g
}

func TestFairShareWakeOrder(t *testing.T) {
	c := newTestController(Options{FairShare: true})
	c.AddCapacity(2, 0)
	for _, n := range []string{"hog", "light"} {
		if err := c.RegisterTenant(Config{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	// Hog takes both slots.
	g1 := grantFor(t, c, "hog")
	g2 := grantFor(t, c, "hog")

	// Both tenants park a waiter; light has the lower dominant share so it
	// must win the next free slot even though hog enqueued first.
	results := make(chan string, 2)
	var wg sync.WaitGroup
	park := func(name string) {
		wg.Add(1)
		if err := c.Admit(context.Background(), name); err != nil {
			t.Fatalf("admit: %v", err)
		}
		go func() {
			defer wg.Done()
			g, err := c.Acquire(context.Background(), name, idgen.Next())
			if err != nil {
				t.Errorf("acquire %s: %v", name, err)
				return
			}
			results <- name
			g.Release()
		}()
	}
	park("hog")
	time.Sleep(20 * time.Millisecond) // hog's waiter parks first
	park("light")
	time.Sleep(20 * time.Millisecond)

	g1.Release()
	first := <-results
	if first != "light" {
		t.Fatalf("first grant went to %q, want light (DRF order)", first)
	}
	g2.Release()
	<-results
	wg.Wait()
}

func TestPriorityBandTrumpsShare(t *testing.T) {
	c := newTestController(Options{FairShare: true})
	c.AddCapacity(1, 0)
	if err := c.RegisterTenant(Config{Name: "lo", Priority: 0}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterTenant(Config{Name: "hi", Priority: 1}); err != nil {
		t.Fatal(err)
	}
	g := grantFor(t, c, "hi") // hi is using the only slot: higher share
	results := make(chan string, 2)
	park := func(name string) {
		if err := c.Admit(context.Background(), name); err != nil {
			t.Fatalf("admit: %v", err)
		}
		go func() {
			g, err := c.Acquire(context.Background(), name, idgen.Next())
			if err != nil {
				t.Errorf("acquire %s: %v", name, err)
				return
			}
			results <- name
			g.Release()
		}()
	}
	park("lo")
	time.Sleep(20 * time.Millisecond)
	park("hi") // higher band, even though hi's share is higher
	time.Sleep(20 * time.Millisecond)
	g.Release()
	if first := <-results; first != "hi" {
		t.Fatalf("first grant went to %q, want hi (priority band)", first)
	}
	<-results
}

func TestPreemptionRevokesOverShare(t *testing.T) {
	c := newTestController(Options{FairShare: true, Preemption: true})
	c.AddCapacity(2, 0)
	for _, n := range []string{"hog", "victim"} {
		if err := c.RegisterTenant(Config{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	g1 := grantFor(t, c, "hog")
	g2 := grantFor(t, c, "hog")
	preempted := make(chan error, 2)
	g1.BindCancel(func(cause error) { preempted <- cause })
	g2.BindCancel(func(cause error) { preempted <- cause })

	// Victim asks for a slot: all busy, hog is strictly over-share →
	// hog's newest grant (g2) is revoked with a typed Preempted cause.
	if err := c.Admit(context.Background(), "victim"); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan *Grant, 1)
	go func() {
		g, err := c.Acquire(context.Background(), "victim", idgen.Next())
		if err != nil {
			t.Errorf("victim acquire: %v", err)
		}
		acquired <- g
	}()
	var cause error
	select {
	case cause = <-preempted:
	case <-time.After(2 * time.Second):
		t.Fatal("no preemption fired")
	}
	if skaderr.CodeOf(cause) != skaderr.Preempted {
		t.Fatalf("preemption cause = %v, want Preempted", cause)
	}
	if !skaderr.Retryable(cause) {
		t.Fatal("Preempted must be retryable (lineage replay)")
	}
	// The runtime reacts to the cancel by releasing the grant; then the
	// victim's waiter gets the slot.
	g2.Release()
	select {
	case g := <-acquired:
		g.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("victim never acquired after preemption")
	}
	g1.Release()
	if n := c.Account("hog").Preempted; n != 1 {
		t.Fatalf("hog preempted = %d, want 1", n)
	}
}

func TestPreemptionBeforeBindFiresOnBind(t *testing.T) {
	c := newTestController(Options{FairShare: true, Preemption: true})
	c.AddCapacity(1, 0)
	for _, n := range []string{"hog", "victim"} {
		if err := c.RegisterTenant(Config{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	g := grantFor(t, c, "hog")
	if err := c.Admit(context.Background(), "victim"); err != nil {
		t.Fatal(err)
	}
	go func() {
		vg, err := c.Acquire(context.Background(), "victim", idgen.Next())
		if err == nil {
			vg.Release()
		}
	}()
	// Wait for the preemption to have fired against the unbound grant.
	deadline := time.After(2 * time.Second)
	for c.Account("hog").Preempted == 0 {
		select {
		case <-deadline:
			t.Fatal("preemption never fired")
		case <-time.After(time.Millisecond):
		}
	}
	// Late bind must observe the pending preemption immediately.
	fired := make(chan error, 1)
	g.BindCancel(func(cause error) { fired <- cause })
	select {
	case cause := <-fired:
		if skaderr.CodeOf(cause) != skaderr.Preempted {
			t.Fatalf("cause = %v", cause)
		}
	default:
		t.Fatal("BindCancel after preemption did not fire the hook")
	}
	g.Release()
}

func TestWorkerQuotaCapsAcquire(t *testing.T) {
	c := newTestController(Options{FairShare: true})
	c.AddCapacity(4, 0)
	if err := c.RegisterTenant(Config{Name: "a", MaxWorkers: 1}); err != nil {
		t.Fatal(err)
	}
	g := grantFor(t, c, "a")
	// Second acquire must park even though 3 slots are free.
	if err := c.Admit(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{})
	go func() {
		g2, err := c.Acquire(context.Background(), "a", idgen.Next())
		if err == nil {
			close(got)
			g2.Release()
		}
	}()
	select {
	case <-got:
		t.Fatal("MaxWorkers=1 tenant ran 2 tasks at once")
	case <-time.After(30 * time.Millisecond):
	}
	g.Release()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("quota slot never handed over")
	}
}

func TestCacheQuotaReserveReleaseEvict(t *testing.T) {
	c := newTestController(Options{})
	if err := c.RegisterTenant(Config{Name: "a", MaxCacheBytes: 100}); err != nil {
		t.Fatal(err)
	}
	ctx := ContextWith(context.Background(), "a")
	id1, id2 := idgen.Next(), idgen.Next()
	if err := c.Reserve(ctx, id1, 60); err != nil {
		t.Fatal(err)
	}
	if err := c.Reserve(ctx, id1, 60); err != nil {
		t.Fatalf("re-reserve same ID must be a no-op: %v", err)
	}
	// 60+60 > 100 and no eviction configured: typed failure.
	err := c.Reserve(ctx, id2, 60)
	if skaderr.CodeOf(err) != skaderr.ResourceExhausted {
		t.Fatalf("want ResourceExhausted, got %v", err)
	}
	c.Release(id1)
	if got := c.CacheBytes("a"); got != 0 {
		t.Fatalf("bytes after release = %d", got)
	}
	if err := c.Reserve(ctx, id2, 60); err != nil {
		t.Fatalf("post-release reserve: %v", err)
	}

	// With EvictOnQuota, the tenant's own oldest object is evicted to make
	// room, via the installed evictor.
	if err := c.RegisterTenant(Config{Name: "b", MaxCacheBytes: 100, EvictOnQuota: true}); err != nil {
		t.Fatal(err)
	}
	var evicted []idgen.ObjectID
	c.SetEvictor(func(id idgen.ObjectID) {
		evicted = append(evicted, id)
		c.Release(id)
	})
	bctx := ContextWith(context.Background(), "b")
	old, young, next := idgen.Next(), idgen.Next(), idgen.Next()
	if err := c.Reserve(bctx, old, 50); err != nil {
		t.Fatal(err)
	}
	if err := c.Reserve(bctx, young, 40); err != nil {
		t.Fatal(err)
	}
	if err := c.Reserve(bctx, next, 50); err != nil {
		t.Fatalf("evicting reserve: %v", err)
	}
	if len(evicted) != 1 || evicted[0] != old {
		t.Fatalf("evicted %v, want oldest [%v]", evicted, old)
	}
	if got := c.CacheBytes("b"); got != 90 {
		t.Fatalf("b bytes = %d, want 90", got)
	}
	// Tenant a's bytes were untouched by b's pressure.
	if got := c.CacheBytes("a"); got != 60 {
		t.Fatalf("a bytes = %d, want 60", got)
	}
}

func TestAccountingIdentity(t *testing.T) {
	c := newTestController(Options{FairShare: true})
	c.AddCapacity(2, 0)
	if err := c.RegisterTenant(Config{Name: "a", MaxPending: 4}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// 3 admitted (1 completes, 1 fails, 1 never granted), then rejections.
	for i := 0; i < 3; i++ {
		if err := c.Admit(ctx, "a"); err != nil {
			t.Fatal(err)
		}
	}
	g1, _ := c.Acquire(ctx, "a", idgen.Next())
	g2, _ := c.Acquire(ctx, "a", idgen.Next())
	g1.Release()
	c.TaskDone("a", true, true)
	g2.Release()
	c.TaskDone("a", true, false)
	c.TaskDone("a", false, false) // admitted, never granted
	if err := c.Admit(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	c.TaskDone("a", false, true)
	a := c.Account("a")
	if a.Admitted != a.Completed+a.Failed+a.InFlight {
		t.Fatalf("I6 violated: %+v", a)
	}
	if a.Submitted != a.Admitted+a.Rejected {
		t.Fatalf("submit identity violated: %+v", a)
	}
	if a.Queued != 0 || a.Running != 0 {
		t.Fatalf("quiesce: queued=%d running=%d", a.Queued, a.Running)
	}
}

func TestMetricsRendered(t *testing.T) {
	reg := metrics.NewRegistry()
	c := NewController(Options{}, reg)
	if err := c.RegisterTenant(Config{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Admit(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	for _, want := range []string{"tenant_admitted{a} = 1", "tenant_queued{a} = 1"} {
		if !strings.Contains(snap, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, snap)
		}
	}
}
