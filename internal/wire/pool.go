package wire

import (
	"math/bits"
	"sync"
)

// Sized-class buffer pooling for the transfer hot path. Frame reads, frame
// header builds, and compression scratch all need short-lived byte slices of
// message-ish sizes; allocating them per message is exactly the per-message
// tax the zero-copy wire path removes. Buffers are pooled by power-of-two
// capacity class so a Get never returns a slice more than 2x the request and
// pools stay type-homogeneous (sync.Pool works best with one size per pool).

// minPoolClass is the smallest pooled class (512 B); requests below it round
// up. maxPoolClass is the largest (64 MiB = MaxFrameSize); requests above it
// fall through to plain make and are dropped on Put.
const (
	minPoolShift = 9  // 512 B
	maxPoolShift = 26 // 64 MiB
	numPools     = maxPoolShift - minPoolShift + 1
)

var bufPools [numPools]sync.Pool

// poolClass returns the pool index for a capacity, or -1 if unpooled.
func poolClass(capacity int) int {
	if capacity <= 0 {
		return 0
	}
	shift := bits.Len(uint(capacity - 1)) // ceil(log2)
	if shift < minPoolShift {
		return 0
	}
	if shift > maxPoolShift {
		return -1
	}
	return shift - minPoolShift
}

// GetBuf returns a zero-length slice with capacity at least n from the pool.
// Release it with PutBuf when no alias of it can outlive the call.
func GetBuf(n int) []byte {
	class := poolClass(n)
	if class < 0 {
		return make([]byte, 0, n)
	}
	if v := bufPools[class].Get(); v != nil {
		return v.([]byte)[:0]
	}
	return make([]byte, 0, 1<<(class+minPoolShift))
}

// PutBuf returns a buffer obtained from GetBuf to its pool. Putting a slice
// that still has live aliases is a use-after-free in spirit: the next GetBuf
// will hand the same storage to an unrelated message. Foreign or oversized
// slices are dropped.
func PutBuf(b []byte) {
	c := cap(b)
	if c < 1<<minPoolShift || c > 1<<maxPoolShift || c&(c-1) != 0 {
		return // not one of ours; let GC have it
	}
	class := poolClass(c)
	if class < 0 {
		return
	}
	bufPools[class].Put(b[:0:c]) //nolint:staticcheck // slice, not pointer: sizes are class-uniform
}

// GetBuffer returns a Buffer whose storage comes from the sized-class pool.
// Pair it with PutBuffer on every hot-path exit.
func GetBuffer(capacity int) *Buffer {
	return &Buffer{b: GetBuf(capacity)}
}

// PutBuffer recycles a pooled Buffer's storage. The Buffer must not be used
// afterwards, and no slice returned by Bytes() may outlive the call.
func PutBuffer(buf *Buffer) {
	if buf == nil {
		return
	}
	PutBuf(buf.b)
	buf.b = nil
}
