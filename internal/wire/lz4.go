package wire

import (
	"encoding/binary"
	"errors"
	"sync"
)

// An LZ4-style block codec for per-link compression on the wire path. The
// format is the classic token stream — literal-run / match-length nibbles
// with 255-run extensions, 16-bit little-endian match offsets — compressed
// greedily through a pooled hash table. It trades ratio for speed the way
// LZ4 does, which is the right trade on rack-class links: the fabric's
// rack bandwidth (~3 GB/s) is slower than the codec, so shipping fewer
// bytes wins, while island/NVLink-class links are faster than any codec
// and ship raw.
//
// The codec is self-contained (no dependency beyond the standard library)
// and deterministic: the same input always yields the same block.

// ErrCorruptBlock reports a malformed compressed block.
var ErrCorruptBlock = errors.New("wire: corrupt compressed block")

const (
	lz4MinMatch  = 4
	lz4MaxOffset = 65535
	lz4HashLog   = 13
	lz4TableSize = 1 << lz4HashLog
	// lz4MFLimit: matches must start at least this far from the end, so the
	// final sequence is always literals (mirrors the reference format rule).
	lz4MFLimit = 12
)

var lz4TablePool = sync.Pool{
	New: func() any { return new([lz4TableSize]int32) },
}

func lz4Hash(u uint32) uint32 { return (u * 2654435761) >> (32 - lz4HashLog) }

// CompressBound returns the maximum compressed size of n input bytes.
func CompressBound(n int) int { return n + n/255 + 16 }

// AppendCompress appends the block encoding of src to dst and returns the
// extended slice. It never fails; incompressible input grows by at most
// CompressBound(len(src)) - len(src) bytes (callers ship raw when the block
// is not smaller).
func AppendCompress(dst, src []byte) []byte {
	n := len(src)
	if n < lz4MFLimit+lz4MinMatch {
		return lz4AppendLastLiterals(dst, src)
	}
	table := lz4TablePool.Get().(*[lz4TableSize]int32)
	for i := range table {
		table[i] = 0
	}
	defer lz4TablePool.Put(table)

	var (
		s      = 0 // scan position
		anchor = 0 // start of pending literals
		limit  = n - lz4MFLimit
	)
	for s < limit {
		seq := binary.LittleEndian.Uint32(src[s:])
		h := lz4Hash(seq)
		cand := int(table[h]) - 1 // stored +1 so 0 means empty
		table[h] = int32(s + 1)
		if cand < 0 || s-cand > lz4MaxOffset ||
			binary.LittleEndian.Uint32(src[cand:]) != seq {
			s++
			continue
		}
		// Extend the match forward (leave the final 5 bytes as literals)
		// and backward over pending literals.
		mLen := lz4MinMatch
		for s+mLen < n-5 && src[cand+mLen] == src[s+mLen] {
			mLen++
		}
		for s > anchor && cand > 0 && src[s-1] == src[cand-1] {
			s--
			cand--
			mLen++
		}
		dst = lz4AppendSequence(dst, src[anchor:s], s-cand, mLen)
		s += mLen
		anchor = s
	}
	return lz4AppendLastLiterals(dst, src[anchor:])
}

// lz4AppendSequence emits one token + literals + offset + match length.
func lz4AppendSequence(dst, lits []byte, offset, mLen int) []byte {
	litLen := len(lits)
	ml := mLen - lz4MinMatch
	token := byte(0)
	if litLen >= 15 {
		token = 0xF0
	} else {
		token = byte(litLen) << 4
	}
	if ml >= 15 {
		token |= 0x0F
	} else {
		token |= byte(ml)
	}
	dst = append(dst, token)
	if litLen >= 15 {
		dst = lz4AppendLenExt(dst, litLen-15)
	}
	dst = append(dst, lits...)
	dst = append(dst, byte(offset), byte(offset>>8))
	if ml >= 15 {
		dst = lz4AppendLenExt(dst, ml-15)
	}
	return dst
}

// lz4AppendLastLiterals emits the closing literals-only sequence.
func lz4AppendLastLiterals(dst, lits []byte) []byte {
	litLen := len(lits)
	if litLen >= 15 {
		dst = append(dst, 0xF0)
		dst = lz4AppendLenExt(dst, litLen-15)
	} else {
		dst = append(dst, byte(litLen)<<4)
	}
	return append(dst, lits...)
}

func lz4AppendLenExt(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// DecompressInto decodes one block into dst, which must be exactly the
// original input's length. Every read is bounds-checked: a corrupt or
// hostile block returns ErrCorruptBlock, never panics and never reads or
// writes out of range.
func DecompressInto(dst, block []byte) error {
	var di, si int
	readExt := func() (int, bool) {
		v := 0
		for {
			if si >= len(block) {
				return 0, false
			}
			b := block[si]
			si++
			v += int(b)
			if b != 255 {
				return v, true
			}
			if v > MaxFrameSize {
				return 0, false
			}
		}
	}
	for {
		if si >= len(block) {
			return ErrCorruptBlock // ran out before the closing literals
		}
		token := block[si]
		si++
		litLen := int(token >> 4)
		if litLen == 15 {
			ext, ok := readExt()
			if !ok {
				return ErrCorruptBlock
			}
			litLen += ext
		}
		if litLen > len(block)-si || litLen > len(dst)-di {
			return ErrCorruptBlock
		}
		copy(dst[di:], block[si:si+litLen])
		si += litLen
		di += litLen
		if si == len(block) {
			if di != len(dst) {
				return ErrCorruptBlock
			}
			return nil // closing sequence has no match part
		}
		if si+2 > len(block) {
			return ErrCorruptBlock
		}
		offset := int(block[si]) | int(block[si+1])<<8
		si += 2
		if offset == 0 || offset > di {
			return ErrCorruptBlock
		}
		mLen := int(token & 0x0F)
		if mLen == 15 {
			ext, ok := readExt()
			if !ok {
				return ErrCorruptBlock
			}
			mLen += ext
		}
		mLen += lz4MinMatch
		if mLen > len(dst)-di {
			return ErrCorruptBlock
		}
		if offset >= mLen {
			copy(dst[di:di+mLen], dst[di-offset:])
		} else {
			// Overlapping match (run): copy byte-wise so earlier output
			// feeds later positions, the LZ4 run-encoding semantics.
			for i := 0; i < mLen; i++ {
				dst[di+i] = dst[di-offset+i]
			}
		}
		di += mLen
	}
}
