// Package wire provides the low-level binary encoding helpers shared by the
// transport layer and the data formats: unsigned/signed varints, length-
// prefixed byte strings, and framed messages over an io stream.
//
// The encoding is deliberately simple and self-describing enough for the
// runtime's needs; it is not a general-purpose serialization framework.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrShortBuffer is returned when a decode runs past the end of its input.
var ErrShortBuffer = errors.New("wire: short buffer")

// MaxFrameSize bounds a single framed message (64 MiB). Larger payloads must
// be chunked by the caller; the bound protects against corrupted length
// prefixes allocating unbounded memory.
const MaxFrameSize = 64 << 20

// Buffer is an append-only encoder. The zero value is ready to use.
type Buffer struct {
	b []byte
}

// NewBuffer returns a Buffer with the given initial capacity.
func NewBuffer(capacity int) *Buffer {
	return &Buffer{b: make([]byte, 0, capacity)}
}

// Bytes returns the encoded bytes. The slice aliases the buffer's storage.
func (e *Buffer) Bytes() []byte { return e.b }

// Len returns the number of encoded bytes.
func (e *Buffer) Len() int { return len(e.b) }

// Reset truncates the buffer for reuse.
func (e *Buffer) Reset() { e.b = e.b[:0] }

// Uvarint appends an unsigned varint.
func (e *Buffer) Uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// Varint appends a signed varint (zig-zag).
func (e *Buffer) Varint(v int64) { e.b = binary.AppendVarint(e.b, v) }

// Uint32 appends a fixed-width big-endian uint32.
func (e *Buffer) Uint32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }

// Uint64 appends a fixed-width big-endian uint64.
func (e *Buffer) Uint64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }

// Float64 appends a float64 as its IEEE-754 bits.
func (e *Buffer) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Byte appends a single byte.
func (e *Buffer) Byte(v byte) { e.b = append(e.b, v) }

// Bool appends a boolean as one byte.
func (e *Buffer) Bool(v bool) {
	if v {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// Bytes16 appends a fixed 16-byte value (e.g. an idgen.ID).
func (e *Buffer) Bytes16(v [16]byte) { e.b = append(e.b, v[:]...) }

// LenBytes appends a length-prefixed byte string.
func (e *Buffer) LenBytes(v []byte) {
	e.Uvarint(uint64(len(v)))
	e.b = append(e.b, v...)
}

// String appends a length-prefixed string.
func (e *Buffer) String(v string) {
	e.Uvarint(uint64(len(v)))
	e.b = append(e.b, v...)
}

// Raw appends bytes with no prefix.
func (e *Buffer) Raw(v []byte) { e.b = append(e.b, v...) }

// Reader decodes values written by Buffer, in the same order.
type Reader struct {
	b   []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrShortBuffer
	}
}

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Varint decodes a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// Uint32 decodes a fixed-width big-endian uint32.
func (r *Reader) Uint32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// Uint64 decodes a fixed-width big-endian uint64.
func (r *Reader) Uint64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// Float64 decodes a float64.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// Byte decodes a single byte.
func (r *Reader) Byte() byte {
	if r.err != nil || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bool decodes a boolean.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Bytes16 decodes a fixed 16-byte value.
func (r *Reader) Bytes16() (v [16]byte) {
	if r.err != nil || r.off+16 > len(r.b) {
		r.fail()
		return
	}
	copy(v[:], r.b[r.off:])
	r.off += 16
	return
}

// LenBytes decodes a length-prefixed byte string. The returned slice aliases
// the Reader's input.
func (r *Reader) LenBytes() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return v
}

// String decodes a length-prefixed string.
func (r *Reader) String() string { return string(r.LenBytes()) }

// Raw returns the next n undecoded bytes without copying.
func (r *Reader) Raw(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// WriteFrame writes a length-prefixed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds max %d", len(payload), MaxFrameSize)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds max %d", n, MaxFrameSize)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
