package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	var buf Buffer
	buf.Uvarint(300)
	buf.Varint(-42)
	buf.Uint32(0xdeadbeef)
	buf.Uint64(1 << 50)
	buf.Float64(3.14159)
	buf.Byte(7)
	buf.Bool(true)
	buf.Bool(false)
	buf.Bytes16([16]byte{1, 2, 3})
	buf.LenBytes([]byte("hello"))
	buf.String("world")

	r := NewReader(buf.Bytes())
	if got := r.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -42 {
		t.Errorf("Varint = %d", got)
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32 = %x", got)
	}
	if got := r.Uint64(); got != 1<<50 {
		t.Errorf("Uint64 = %d", got)
	}
	if got := r.Float64(); got != 3.14159 {
		t.Errorf("Float64 = %v", got)
	}
	if got := r.Byte(); got != 7 {
		t.Errorf("Byte = %d", got)
	}
	if got := r.Bool(); got != true {
		t.Errorf("Bool = %v", got)
	}
	if got := r.Bool(); got != false {
		t.Errorf("Bool = %v", got)
	}
	if got := r.Bytes16(); got != [16]byte{1, 2, 3} {
		t.Errorf("Bytes16 = %v", got)
	}
	if got := r.LenBytes(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("LenBytes = %q", got)
	}
	if got := r.String(); got != "world" {
		t.Errorf("String = %q", got)
	}
	if r.Err() != nil {
		t.Errorf("Err = %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
}

func TestShortBufferErrors(t *testing.T) {
	r := NewReader([]byte{0x01})
	r.Uint64()
	if r.Err() != ErrShortBuffer {
		t.Errorf("Err = %v, want ErrShortBuffer", r.Err())
	}
	// Subsequent reads keep failing without panicking.
	r.Uvarint()
	_ = r.String()
	if r.Err() != ErrShortBuffer {
		t.Errorf("Err changed to %v", r.Err())
	}
}

func TestLenBytesTruncatedLength(t *testing.T) {
	var buf Buffer
	buf.Uvarint(1000) // claims 1000 bytes, provides none
	r := NewReader(buf.Bytes())
	if got := r.LenBytes(); got != nil {
		t.Errorf("LenBytes = %v, want nil", got)
	}
	if r.Err() == nil {
		t.Error("expected error for truncated LenBytes")
	}
}

func TestRawBounds(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if got := r.Raw(2); !bytes.Equal(got, []byte{1, 2}) {
		t.Errorf("Raw(2) = %v", got)
	}
	if got := r.Raw(5); got != nil {
		t.Errorf("Raw(5) past end = %v, want nil", got)
	}
	if r.Err() == nil {
		t.Error("expected error reading past end")
	}
	if r2 := NewReader([]byte{1}); r2.Raw(-1) != nil || r2.Err() == nil {
		t.Error("negative Raw should error")
	}
}

func TestVarintRoundTripProperty(t *testing.T) {
	f := func(u uint64, i int64) bool {
		var buf Buffer
		buf.Uvarint(u)
		buf.Varint(i)
		r := NewReader(buf.Bytes())
		return r.Uvarint() == u && r.Varint() == i && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesRoundTripProperty(t *testing.T) {
	f := func(a, b []byte, s string) bool {
		var buf Buffer
		buf.LenBytes(a)
		buf.String(s)
		buf.LenBytes(b)
		r := NewReader(buf.Bytes())
		ga := r.LenBytes()
		gs := r.String()
		gb := r.LenBytes()
		return bytes.Equal(ga, a) && gs == s && bytes.Equal(gb, b) && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var stream bytes.Buffer
	payloads := [][]byte{[]byte("first"), {}, []byte("third frame")}
	for _, p := range payloads {
		if err := WriteFrame(&stream, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&stream)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d = %q, want %q", i, got, want)
		}
	}
}

func TestFrameTooLarge(t *testing.T) {
	var stream bytes.Buffer
	if err := WriteFrame(&stream, make([]byte, MaxFrameSize+1)); err == nil {
		t.Error("WriteFrame should reject oversize payloads")
	}
	// A corrupted header claiming a huge frame must be rejected, not allocated.
	stream.Reset()
	stream.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadFrame(&stream); err == nil {
		t.Error("ReadFrame should reject oversize headers")
	}
}

func TestBufferReset(t *testing.T) {
	buf := NewBuffer(16)
	buf.String("data")
	buf.Reset()
	if buf.Len() != 0 {
		t.Errorf("Len after Reset = %d", buf.Len())
	}
}
