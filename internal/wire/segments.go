package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Scatter/gather framing: a frame is written from multiple segments without
// coalescing them into one allocation. On a net.Conn the segments go out as
// one writev, so a bulk payload crosses from its owner's memory to the
// socket with zero intermediate copies — the header rides in its own small
// (pooled) segment.

// vecPool recycles the net.Buffers backing arrays so segment writes allocate
// nothing per message.
var vecPool = sync.Pool{
	New: func() any { return make(net.Buffers, 0, 8) },
}

// WriteFrameSegments writes one length-prefixed frame whose payload is the
// concatenation of segs, without copying them together. Equivalent on the
// wire to WriteFrame(w, concat(segs...)).
func WriteFrameSegments(w io.Writer, segs ...[]byte) error {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	if total > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds max %d", total, MaxFrameSize)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(total))
	vec := vecPool.Get().(net.Buffers)
	vec = append(vec, hdr[:])
	for _, s := range segs {
		if len(s) > 0 {
			vec = append(vec, s)
		}
	}
	// net.Buffers.WriteTo consumes the vector (writev on a net.Conn, a
	// Write loop elsewhere) and guarantees full delivery or an error.
	_, err := vec.WriteTo(w)
	vecPool.Put(vec[:0])
	return err
}

// ReadFrameBuf reads one length-prefixed frame into pooled storage. The
// caller owns the returned slice and must release it with PutBuf once no
// alias of it can outlive the message — the whole point is that the next
// frame on this connection reuses the same storage.
func ReadFrameBuf(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds max %d", n, MaxFrameSize)
	}
	payload := GetBuf(int(n))[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		PutBuf(payload)
		return nil, err
	}
	return payload, nil
}
