package wire

import (
	"bytes"
	"sync"
	"testing"
)

func TestWriteFrameSegmentsMatchesWriteFrame(t *testing.T) {
	payloadSets := [][][]byte{
		{},
		{nil},
		{[]byte("a")},
		{[]byte("hdr"), []byte("body")},
		{[]byte("h"), nil, []byte(""), bytes.Repeat([]byte("x"), 100000), []byte("tail")},
	}
	for _, segs := range payloadSets {
		var whole []byte
		for _, s := range segs {
			whole = append(whole, s...)
		}
		var a, b bytes.Buffer
		if err := WriteFrame(&a, whole); err != nil {
			t.Fatal(err)
		}
		if err := WriteFrameSegments(&b, segs...); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("segment framing differs from whole framing for %d segments", len(segs))
		}
		got, err := ReadFrame(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, whole) {
			t.Fatal("frame round trip mismatch")
		}
	}
}

func TestWriteFrameSegmentsTooLarge(t *testing.T) {
	big := make([]byte, MaxFrameSize/2+1)
	var sink bytes.Buffer
	if err := WriteFrameSegments(&sink, big, big); err == nil {
		t.Fatal("oversized segmented frame accepted")
	}
}

func TestReadFrameBuf(t *testing.T) {
	var b bytes.Buffer
	payload := bytes.Repeat([]byte("p"), 10000)
	if err := WriteFrame(&b, payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrameBuf(&b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("pooled frame read mismatch")
	}
	PutBuf(got)
}

func TestBufPoolSizing(t *testing.T) {
	for _, n := range []int{0, 1, 511, 512, 513, 4096, 1 << 20} {
		b := GetBuf(n)
		if len(b) != 0 || cap(b) < n {
			t.Fatalf("GetBuf(%d): len=%d cap=%d", n, len(b), cap(b))
		}
		PutBuf(b)
	}
	// Oversized requests fall through to make and are not pooled.
	huge := GetBuf(1<<26 + 1)
	if cap(huge) < 1<<26+1 {
		t.Fatal("oversized GetBuf shorted the request")
	}
	PutBuf(huge) // must not poison the pools
}

// TestBufPoolConcurrent hammers the pool from many goroutines; run under
// -race it proves reused storage is handed to one owner at a time.
func TestBufPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				n := 64 << uint(i%10)
				b := GetBuf(n)[:n]
				for j := range b {
					b[j] = byte(g)
				}
				for j := range b {
					if b[j] != byte(g) {
						t.Errorf("buffer shared across owners")
						return
					}
				}
				PutBuf(b)
			}
		}(g)
	}
	wg.Wait()
}

func BenchmarkFrameSegmentsVsCopy(b *testing.B) {
	hdr := []byte("0123456789abcdef0123456789abcdef")
	payload := bytes.Repeat([]byte("z"), 1<<20)
	b.Run("coalesced", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			whole := make([]byte, 0, len(hdr)+len(payload))
			whole = append(whole, hdr...)
			whole = append(whole, payload...)
			_ = WriteFrame(discardWriter{}, whole)
		}
	})
	b.Run("segments", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(payload)))
		for i := 0; i < b.N; i++ {
			_ = WriteFrameSegments(discardWriter{}, hdr, payload)
		}
	})
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
