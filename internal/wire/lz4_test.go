package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

func lz4RoundTrip(t *testing.T, src []byte) {
	t.Helper()
	block := AppendCompress(nil, src)
	if len(block) > CompressBound(len(src)) {
		t.Fatalf("block %d exceeds bound %d for %d input bytes", len(block), CompressBound(len(src)), len(src))
	}
	dst := make([]byte, len(src))
	if err := DecompressInto(dst, block); err != nil {
		t.Fatalf("DecompressInto: %v", err)
	}
	if !bytes.Equal(dst, src) {
		t.Fatalf("round trip mismatch: %d input bytes", len(src))
	}
}

func TestLZ4RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := [][]byte{
		nil,
		[]byte(""),
		[]byte("a"),
		[]byte("hello world"),
		bytes.Repeat([]byte("x"), 100000),
		bytes.Repeat([]byte("abcd"), 5000),
		bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog "), 300),
	}
	// Incompressible random data.
	random := make([]byte, 64<<10)
	rng.Read(random)
	cases = append(cases, random)
	// Mixed: runs + random islands, every small length.
	for n := 0; n < 300; n++ {
		mixed := make([]byte, n)
		for i := range mixed {
			if i%3 == 0 {
				mixed[i] = byte(rng.Intn(256))
			} else {
				mixed[i] = 7
			}
		}
		cases = append(cases, mixed)
	}
	for _, src := range cases {
		lz4RoundTrip(t, src)
	}
}

func TestLZ4CompressesRuns(t *testing.T) {
	src := bytes.Repeat([]byte("skadi"), 10000)
	block := AppendCompress(nil, src)
	if len(block) >= len(src)/10 {
		t.Fatalf("run of %d bytes compressed only to %d", len(src), len(block))
	}
}

func TestLZ4Deterministic(t *testing.T) {
	src := bytes.Repeat([]byte("deterministic payload 123 "), 1000)
	a := AppendCompress(nil, src)
	b := AppendCompress(nil, src)
	if !bytes.Equal(a, b) {
		t.Fatal("same input produced different blocks")
	}
}

// TestLZ4DecompressHostile feeds corrupt blocks: every outcome must be a
// clean ErrCorruptBlock, never a panic or an out-of-range access.
func TestLZ4DecompressHostile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := bytes.Repeat([]byte("valid data segment "), 200)
	valid := AppendCompress(nil, src)
	dst := make([]byte, len(src))
	for trial := 0; trial < 2000; trial++ {
		block := append([]byte(nil), valid...)
		for flips := 0; flips < 1+rng.Intn(4); flips++ {
			block[rng.Intn(len(block))] ^= byte(1 + rng.Intn(255))
		}
		_ = DecompressInto(dst, block) // must not panic
	}
	for trial := 0; trial < 2000; trial++ {
		block := make([]byte, rng.Intn(64))
		rng.Read(block)
		_ = DecompressInto(dst, block)
	}
	// Truncations of a valid block.
	for cut := 0; cut < len(valid); cut += 7 {
		_ = DecompressInto(dst, valid[:cut])
	}
	// Wrong output sizes must error, not overrun.
	if err := DecompressInto(make([]byte, len(src)-1), valid); err == nil {
		t.Fatal("short dst accepted")
	}
	if err := DecompressInto(make([]byte, len(src)+1), valid); err == nil {
		t.Fatal("long dst accepted")
	}
}

func BenchmarkLZ4Compress(b *testing.B) {
	src := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog "), 2000)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	var block []byte
	for i := 0; i < b.N; i++ {
		block = AppendCompress(block[:0], src)
	}
}

func BenchmarkLZ4Decompress(b *testing.B) {
	src := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog "), 2000)
	block := AppendCompress(nil, src)
	dst := make([]byte, len(src))
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecompressInto(dst, block); err != nil {
			b.Fatal(err)
		}
	}
}
