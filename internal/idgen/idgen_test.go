package idgen

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNextUnique(t *testing.T) {
	seen := make(map[ID]bool)
	for i := 0; i < 10000; i++ {
		id := Next()
		if seen[id] {
			t.Fatalf("duplicate ID %s after %d generations", id, i)
		}
		seen[id] = true
	}
}

func TestNextConcurrentUnique(t *testing.T) {
	const goroutines = 16
	const perG = 2000
	var mu sync.Mutex
	seen := make(map[ID]bool, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]ID, 0, perG)
			for i := 0; i < perG; i++ {
				local = append(local, Next())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate ID %s", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestNilAndIsNil(t *testing.T) {
	if !Nil.IsNil() {
		t.Error("Nil.IsNil() = false")
	}
	if Next().IsNil() {
		t.Error("Next().IsNil() = true")
	}
}

func TestStringForms(t *testing.T) {
	id := Next()
	if len(id.String()) != 32 {
		t.Errorf("String() length = %d, want 32", len(id.String()))
	}
	if len(id.Short()) != 12 {
		t.Errorf("Short() length = %d, want 12", len(id.Short()))
	}
}

func TestOrdering(t *testing.T) {
	a := Next()
	b := Next()
	if !a.Less(b) {
		t.Errorf("a=%s should be Less than b=%s", a, b)
	}
	if b.Less(a) {
		t.Error("Less is not antisymmetric")
	}
	if a.Less(a) {
		t.Error("Less is not irreflexive")
	}
}

func TestFromSeq(t *testing.T) {
	id := FromSeq(42)
	if id.Seq() != 42 {
		t.Errorf("Seq() = %d, want 42", id.Seq())
	}
	if FromSeq(41).Seq() >= id.Seq() {
		t.Error("FromSeq ordering broken")
	}
}

func TestSeqRoundTripProperty(t *testing.T) {
	f := func(seq uint64) bool {
		return FromSeq(seq).Seq() == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLessMatchesSeqProperty(t *testing.T) {
	f := func(a, b uint64) bool {
		return FromSeq(a).Less(FromSeq(b)) == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
