// Package idgen provides process-unique identifiers for the entities the
// Skadi runtime tracks: objects, tasks, actors, nodes, and jobs.
//
// IDs are 16-byte values. The first 8 bytes are a random seed fixed at
// process start (so IDs from distinct processes in a real deployment do not
// collide), and the last 8 bytes are a monotonically increasing counter.
// This keeps generation allocation-free and lock-free while preserving a
// total order useful for deterministic tests (see Less).
package idgen

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// ID is a 16-byte process-unique identifier.
type ID [16]byte

var (
	seed    [8]byte
	counter atomic.Uint64
)

func init() {
	if _, err := rand.Read(seed[:]); err != nil {
		// crypto/rand never fails on supported platforms; if it does the
		// process cannot produce unique IDs and must not continue.
		panic("idgen: cannot seed: " + err.Error())
	}
}

// Next returns a fresh ID, unique within the process and (with overwhelming
// probability) across processes.
func Next() ID {
	var id ID
	copy(id[:8], seed[:])
	binary.BigEndian.PutUint64(id[8:], counter.Add(1))
	return id
}

// Nil is the zero ID, used to mean "no ID".
var Nil ID

// IsNil reports whether id is the zero ID.
func (id ID) IsNil() bool { return id == Nil }

// String returns the hexadecimal form of the ID.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// Short returns an abbreviated form suitable for logs.
func (id ID) Short() string { return hex.EncodeToString(id[10:]) }

// Less reports whether id was generated before other within this process.
func (id ID) Less(other ID) bool {
	return binary.BigEndian.Uint64(id[8:]) < binary.BigEndian.Uint64(other[8:])
}

// Seq returns the process-local sequence number of the ID.
func (id ID) Seq() uint64 { return binary.BigEndian.Uint64(id[8:]) }

// FromSeq constructs an ID with the given sequence number and the process
// seed. It is intended for tests that need predictable IDs.
func FromSeq(seq uint64) ID {
	var id ID
	copy(id[:8], seed[:])
	binary.BigEndian.PutUint64(id[8:], seq)
	return id
}

// Typed identifier aliases. Distinct named types prevent accidentally
// passing, say, a TaskID where an ObjectID is required.

// ObjectID identifies an immutable object in the object store.
type ObjectID = ID

// TaskID identifies a single task invocation.
type TaskID = ID

// ActorID identifies a stateful actor instance.
type ActorID = ID

// NodeID identifies a cluster node (server, DPU, or device).
type NodeID = ID

// JobID identifies a submitted job (a whole physical graph execution).
type JobID = ID
