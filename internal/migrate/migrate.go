// Package migrate implements Skadi's live-migration subsystem: moving
// actors and resident objects between nodes *without* losing work — the
// third leg of the runtime's placement story next to scheduling (where
// work starts) and lineage recovery (where work restarts after failure).
//
// In a disaggregated data center the resource pool is elastic by design
// (§1): servers and device blades join and leave while data systems keep
// running. Killing a node and re-executing its lineage is correct but
// wasteful — the paper's runtime can instead *drain*: checkpoint → transfer
// → restore → cutover for actors, copy + ownership-location move +
// tombstone-forward for objects. Experiment E14 quantifies the gap.
//
// The migrator is a pure coordinator: it sequences RPCs against the source
// and destination raylets and the head's ownership table, but the bytes
// flow directly source → destination over the fabric, never through the
// coordinator.
//
// The actor protocol is freeze → transfer → resume:
//
//  1. migrate.freeze on the source: the running task finishes, queued
//     tasks park on a gate (not the actor lock, so the freeze can drain).
//  2. migrate.transfer: the source ships the quiescent state directly to
//     the destination (migrate.install).
//  3. migrate.resume with Commit: the source installs a cutover tombstone
//     and lifts the gate; parked tasks bounce back to their submitter with
//     ExecResponse.ActorMovedTo and are re-dispatched to the destination.
//     Any step failing instead resumes with rollback: the gate lifts and
//     the actor keeps running at the source. No submission is lost either
//     way.
//
// The object protocol is copy → move → forward: migrate.transfer pushes
// the bytes to the destination, own.moveloc atomically retargets the
// ownership location set and records a forwarding entry, and the source
// keeps a tombstone so in-flight readers holding a stale location chase
// the move (GetResponse.MovedTo) instead of failing.
package migrate

import (
	"context"
	"fmt"

	"skadi/internal/idgen"
	"skadi/internal/raylet"
	"skadi/internal/trace"
	"skadi/internal/transport"
)

// Config configures a Migrator.
type Config struct {
	// Self is the node the migrator issues RPCs from (the head or driver
	// node of the runtime embedding it).
	Self idgen.NodeID
	// Head is the node hosting the ownership service.
	Head idgen.NodeID
	// Transport carries the coordination RPCs.
	Transport transport.Transport
}

// Migrator coordinates live migrations. It holds no per-migration state;
// one migrator serves a whole runtime and is safe for concurrent use.
type Migrator struct {
	cfg Config
}

// New returns a migrator.
func New(cfg Config) *Migrator { return &Migrator{cfg: cfg} }

// ActorReport describes one completed actor migration.
type ActorReport struct {
	Actor    idgen.ActorID
	From, To idgen.NodeID
	// Bytes is the state payload that crossed the fabric.
	Bytes int64
	// Seq is the checkpoint sequence the destination adopted.
	Seq uint64
}

// ObjectReport describes one completed object migration.
type ObjectReport struct {
	Object   idgen.ObjectID
	From, To idgen.NodeID
	Bytes    int64
	// Moved is false when the source held no copy (nothing to do).
	Moved bool
}

// call issues one coordination RPC.
func (m *Migrator) call(ctx context.Context, to idgen.NodeID, kind string, req any) ([]byte, error) {
	return m.cfg.Transport.Call(ctx, m.cfg.Self, to, kind, transport.MustEncode(req))
}

// MigrateActor live-migrates one actor from → to using the freeze /
// transfer / resume protocol. On any failure after the freeze the source
// is rolled back (gate lifted, actor resumes locally) before the error is
// returned, so a failed migration never wedges the actor.
func (m *Migrator) MigrateActor(ctx context.Context, actor idgen.ActorID, from, to idgen.NodeID) (ActorReport, error) {
	ctx, sp := trace.Start(ctx, trace.KindMigrateActor, m.cfg.Self)
	sp.SetAttr("actor", actor.Short()).SetAttr("from", from.Short()).SetAttr("to", to.Short())
	defer sp.End()

	rep := ActorReport{Actor: actor, From: from, To: to}
	if from == to {
		return rep, fmt.Errorf("migrate: actor %s: source and destination are both %s", actor.Short(), from.Short())
	}

	// 1. Freeze: running task drains, queued tasks park.
	frozeB, err := m.call(ctx, from, raylet.KindMigrateFreeze, raylet.MigrateFreezeRequest{Actor: actor})
	if err != nil {
		return rep, fmt.Errorf("migrate: freeze %s at %s: %w", actor.Short(), from.Short(), err)
	}
	var froze raylet.MigrateFreezeResponse
	if err := transport.Decode(frozeB, &froze); err != nil {
		return rep, err
	}
	rep.Seq = froze.Seq

	// 2. Transfer: state flows source → destination directly. An actor the
	// source never executed (froze.Known false, e.g. re-pinned after a node
	// failure but not yet run) has no state worth shipping: the destination
	// instead gets a *stateless* install, which clears stale migration
	// leftovers there without marking the actor known — so the actor's
	// first task at the destination restores the latest head checkpoint
	// (first-arrival restore) rather than starting from empty state.
	shipped := false
	if froze.Known {
		xferB, err := m.call(ctx, from, raylet.KindMigrateTransfer,
			raylet.MigrateTransferRequest{Actor: actor, Dest: to})
		if err != nil {
			m.rollback(ctx, actor, from)
			return rep, fmt.Errorf("migrate: transfer %s: %w", actor.Short(), err)
		}
		var xfer raylet.MigrateTransferResponse
		if err := transport.Decode(xferB, &xfer); err != nil {
			m.rollback(ctx, actor, from)
			return rep, err
		}
		rep.Bytes = xfer.Bytes
		shipped = xfer.Found
	}
	if !shipped {
		install := raylet.MigrateInstallRequest{Actor: actor, Stateless: true}
		if _, err := m.call(ctx, to, raylet.KindMigrateInstall, install); err != nil {
			m.rollback(ctx, actor, from)
			return rep, fmt.Errorf("migrate: install %s at %s: %w", actor.Short(), to.Short(), err)
		}
	}

	// 3. Resume with commit: cutover tombstone, parked tasks bounce to the
	// destination.
	if _, err := m.call(ctx, from, raylet.KindMigrateResume,
		raylet.MigrateResumeRequest{Actor: actor, Dest: to, Commit: true}); err != nil {
		return rep, fmt.Errorf("migrate: resume %s: %w", actor.Short(), err)
	}
	sp.SetAttr("bytes", fmt.Sprint(rep.Bytes))
	return rep, nil
}

// rollback lifts a freeze without cutting over; best effort.
func (m *Migrator) rollback(ctx context.Context, actor idgen.ActorID, from idgen.NodeID) {
	_, _ = m.call(ctx, from, raylet.KindMigrateResume,
		raylet.MigrateResumeRequest{Actor: actor, Commit: false})
}

// MigrateObject moves one resident object's copy from → to: the source
// pushes the bytes to the destination, drops its copy behind a tombstone,
// and the ownership table's location set is atomically retargeted with a
// forwarding entry for readers holding the stale location.
func (m *Migrator) MigrateObject(ctx context.Context, id idgen.ObjectID, from, to idgen.NodeID) (ObjectReport, error) {
	ctx, sp := trace.Start(ctx, trace.KindMigrateObject, m.cfg.Self)
	sp.SetAttr("obj", id.Short()).SetAttr("from", from.Short()).SetAttr("to", to.Short())
	defer sp.End()

	rep := ObjectReport{Object: id, From: from, To: to}
	if from == to {
		return rep, fmt.Errorf("migrate: object %s: source and destination are both %s", id.Short(), from.Short())
	}
	xferB, err := m.call(ctx, from, raylet.KindMigrateTransfer,
		raylet.MigrateTransferRequest{Object: id, Dest: to})
	if err != nil {
		return rep, fmt.Errorf("migrate: transfer object %s: %w", id.Short(), err)
	}
	var xfer raylet.MigrateTransferResponse
	if err := transport.Decode(xferB, &xfer); err != nil {
		return rep, err
	}
	if !xfer.Found {
		return rep, nil // no local copy: DSM-only or already drained
	}
	rep.Bytes = xfer.Bytes
	rep.Moved = true

	// Cutover: retarget the ownership location set and record the forward.
	if _, err := m.call(ctx, m.cfg.Head, raylet.KindOwnMoveLoc,
		raylet.OwnMoveLocRequest{ID: id, From: from, To: to}); err != nil {
		// The bytes are at the destination and the source has a tombstone,
		// so reads still resolve; only the table is stale. Surface it.
		return rep, fmt.Errorf("migrate: own.moveloc %s: %w", id.Short(), err)
	}
	sp.SetAttr("bytes", fmt.Sprint(rep.Bytes))
	return rep, nil
}
