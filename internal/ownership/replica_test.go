package ownership

import (
	"context"
	"sync"
	"testing"
	"time"

	"skadi/internal/idgen"
)

// idOwnedBy probes IDs until one routes to host. Hashing is deterministic,
// so a few thousand probes always find one on small rings.
func idOwnedBy(t *testing.T, s *ShardedTable, host idgen.NodeID) idgen.ObjectID {
	t.Helper()
	for i := 0; i < 100000; i++ {
		id := idgen.Next()
		if owner, _ := s.OwnerOf(id); owner == host {
			return id
		}
	}
	t.Fatalf("no key owned by %s", host.Short())
	return idgen.Nil
}

func TestRingSuccessor(t *testing.T) {
	r := NewRing(16)
	a := idgen.Next()
	r.Add(a)
	if _, ok := r.SuccessorOf(a); ok {
		t.Fatal("ring of one has no successor")
	}
	var members []idgen.NodeID
	members = append(members, a)
	for i := 0; i < 5; i++ {
		n := idgen.Next()
		r.Add(n)
		members = append(members, n)
	}
	succ := r.successors()
	if len(succ) != len(members) {
		t.Fatalf("successors() covers %d members, want %d", len(succ), len(members))
	}
	for _, m := range members {
		got, ok := r.SuccessorOf(m)
		if !ok {
			t.Fatalf("no successor for %s", m.Short())
		}
		if got == m {
			t.Fatalf("member %s is its own successor", m.Short())
		}
		if succ[m] != got {
			t.Fatalf("successors()[%s] = %s, SuccessorOf = %s",
				m.Short(), succ[m].Short(), got.Short())
		}
	}
	// Removing a member's successor must re-route to a live member.
	target := members[2]
	old, _ := r.SuccessorOf(target)
	r.Remove(old)
	fresh, ok := r.SuccessorOf(target)
	if !ok || fresh == old || fresh == target {
		t.Fatalf("successor after removal = (%s,%v)", fresh.Short(), ok)
	}
	if _, ok := r.SuccessorOf(old); ok {
		t.Fatal("removed member still has a successor")
	}
}

func TestShardReplicationMirrorsPrimary(t *testing.T) {
	s, nodes := newShardedWith(3)
	owner, task := idgen.Next(), idgen.Next()
	loc, loc2 := idgen.Next(), idgen.Next()
	var ids []idgen.ObjectID
	for i := 0; i < 60; i++ {
		id := idgen.Next()
		ids = append(ids, id)
		if err := s.CreatePending(id, owner, task); err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		switch i % 5 {
		case 0: // stays pending with a subscriber
			if _, _, err := s.Subscribe(id, loc2); err != nil {
				t.Fatal(err)
			}
		case 1: // ready with two locations
			if _, err := s.MarkReady(id, 8, loc, idgen.Nil, ""); err != nil {
				t.Fatal(err)
			}
			if err := s.AddLocation(id, loc2); err != nil {
				t.Fatal(err)
			}
		case 2: // ready then moved (forward chain)
			if _, err := s.MarkReady(id, 8, loc, idgen.Nil, ""); err != nil {
				t.Fatal(err)
			}
			if err := s.MoveLocation(id, loc, loc2); err != nil {
				t.Fatal(err)
			}
		case 3: // lost
			if err := s.MarkLost(id); err != nil {
				t.Fatal(err)
			}
		case 4: // ready then deleted
			if _, err := s.MarkReady(id, 8, loc, idgen.Nil, ""); err != nil {
				t.Fatal(err)
			}
			s.Delete(id)
		}
	}
	if n := s.FlushReplication(); n == 0 {
		t.Fatal("flush applied nothing; replication log never filled")
	}
	if d := s.ReplicaDivergence(); len(d) != 0 {
		t.Fatalf("replica diverged:\n%v", d)
	}
	st := s.ReplicationStats()
	if st.Replicas != len(nodes) {
		t.Fatalf("replicas = %d, want %d", st.Replicas, len(nodes))
	}
	if st.Appended == 0 || st.Applied != st.Appended {
		t.Fatalf("appended=%d applied=%d, want equal and nonzero", st.Appended, st.Applied)
	}
}

func TestShardReplicationBoundedLog(t *testing.T) {
	s, nodes := newShardedWith(2)
	owner, task := idgen.Next(), idgen.Next()
	// Hammer one shard far past replogCap without ever flushing: the
	// inline drain must keep the log bounded.
	host := nodes[0]
	for i := 0; i < 3*replogCap; i++ {
		id := idOwnedBy(t, s, host)
		if err := s.CreatePending(id, owner, task); err != nil {
			t.Fatal(err)
		}
	}
	st := s.ReplicationStats()
	if st.LogDepth >= replogCap {
		t.Fatalf("log depth %d not bounded by %d", st.LogDepth, replogCap)
	}
	if st.Applied == 0 {
		t.Fatal("inline drain never fired")
	}
	if d := s.ReplicaDivergence(); len(d) != 0 {
		t.Fatalf("replica diverged:\n%v", d)
	}
}

// TestPromotionRestoresState is the heart of the durability change: kill a
// shard primary via RemoveMemberDead and verify the successor's replica —
// not the dead member's table — restores records, parked waiters, push
// subscriptions, and forwarding chains.
func TestPromotionRestoresState(t *testing.T) {
	s, nodes := newShardedWith(4)
	owner, task := idgen.Next(), idgen.Next()
	victim := nodes[1]
	loc, loc2, sub := idgen.Next(), idgen.Next(), idgen.Next()

	pending := idOwnedBy(t, s, victim)
	moved := idOwnedBy(t, s, victim)
	for _, id := range []idgen.ObjectID{pending, moved} {
		if err := s.CreatePending(id, owner, task); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Subscribe(pending, sub); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MarkReady(moved, 8, loc, idgen.Nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.MoveLocation(moved, loc, loc2); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.WaitReady(context.Background(), pending) }()
	for i := 0; i < 1000; i++ { // wait for the waiter to register
		st := s.ReplicationStats()
		if st.Appended >= 6 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Promote WITHOUT flushing first: the death path must drain the log
	// itself before taking over.
	restored, lost := s.RemoveMemberDead(victim)
	if restored < 2 || lost != 0 {
		t.Fatalf("RemoveMemberDead = (restored %d, lost %d), want (>=2, 0)", restored, lost)
	}
	if host, _ := s.OwnerOf(pending); host == victim {
		t.Fatal("key still routed to dead member")
	}
	// Records survived.
	if rec, err := s.Get(pending); err != nil || rec.State != Pending {
		t.Fatalf("pending entry after promotion: %+v, %v", rec, err)
	}
	// Forward chain survived.
	if to, found := s.ResolveForward(moved, loc); !found || to != loc2 {
		t.Fatalf("forward after promotion = (%s,%v), want (%s,true)", to.Short(), found, loc2.Short())
	}
	// Subscriber and waiter survived: MarkReady on the promoted shard
	// releases both.
	subs, err := s.MarkReady(pending, 4, loc, idgen.Nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0] != sub {
		t.Fatalf("subscribers after promotion = %v, want [%s]", subs, sub.Short())
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitReady across promotion = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never released after promotion + MarkReady")
	}
	st := s.ReplicationStats()
	if st.Promotions != 1 || st.Lost != 0 || st.Restored < 2 {
		t.Fatalf("stats after promotion = %+v", st)
	}
	if d := s.ReplicaDivergence(); len(d) != 0 {
		t.Fatalf("survivor replicas diverged:\n%v", d)
	}
}

func TestPromotionLosesNothingUnderBulkLoad(t *testing.T) {
	s, nodes := newShardedWith(4)
	owner, task := idgen.Next(), idgen.Next()
	ids := make([]idgen.ObjectID, 300)
	for i := range ids {
		ids[i] = idgen.Next()
		if err := s.CreatePending(ids[i], owner, task); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if _, err := s.MarkReady(ids[i], 8, owner, idgen.Nil, ""); err != nil {
				t.Fatal(err)
			}
		}
	}
	before := s.Len()
	// Kill two members back to back — the second may host replicas the
	// first promotion just reseeded.
	if _, lost := s.RemoveMemberDead(nodes[0]); lost != 0 {
		t.Fatalf("lost %d entries on first death", lost)
	}
	if _, lost := s.RemoveMemberDead(nodes[2]); lost != 0 {
		t.Fatalf("lost %d entries on second death", lost)
	}
	if got := s.Len(); got != before {
		t.Fatalf("Len after two deaths = %d, want %d", got, before)
	}
	for _, id := range ids {
		if _, err := s.Get(id); err != nil {
			t.Fatalf("Get(%s) after promotions: %v", id.Short(), err)
		}
	}
	if d := s.ReplicaDivergence(); len(d) != 0 {
		t.Fatalf("replicas diverged:\n%v", d)
	}
}

func TestGracefulRemoveKeepsReplicaParity(t *testing.T) {
	s, nodes := newShardedWith(3)
	owner, task := idgen.Next(), idgen.Next()
	for i := 0; i < 100; i++ {
		if err := s.CreatePending(idgen.Next(), owner, task); err != nil {
			t.Fatal(err)
		}
	}
	s.RemoveMember(nodes[1])
	if d := s.ReplicaDivergence(); len(d) != 0 {
		t.Fatalf("replicas diverged after graceful remove:\n%v", d)
	}
	st := s.ReplicationStats()
	if st.Promotions != 0 {
		t.Fatalf("graceful remove counted as promotion: %+v", st)
	}
	if st.Replicas != 2 {
		t.Fatalf("replicas after remove = %d, want 2", st.Replicas)
	}
}

// TestShardReplicationChurnRace hammers ops + flushes while membership
// churns through both graceful removals and dead-promotions; under -race
// this is the replication-vs-handoff data-race probe.
func TestShardReplicationChurnRace(t *testing.T) {
	s, _ := newShardedWith(3)
	owner, task := idgen.Next(), idgen.Next()
	const workers = 4
	const perWorker = 150
	var wg sync.WaitGroup
	idsCh := make(chan idgen.ObjectID, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := idgen.Next()
				if err := s.CreatePending(id, owner, task); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.MarkReady(id, 4, owner, idgen.Nil, ""); err != nil {
					t.Error(err)
					return
				}
				idsCh <- id
			}
		}()
	}
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(2)
	go func() {
		defer churn.Done()
		var extras []idgen.NodeID
		dead := false
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := idgen.Next()
			s.AddMember(n)
			extras = append(extras, n)
			if len(extras) > 2 {
				if dead {
					s.RemoveMemberDead(extras[0])
				} else {
					s.RemoveMember(extras[0])
				}
				dead = !dead
				extras = extras[1:]
			}
		}
	}()
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.FlushReplication()
		}
	}()
	wg.Wait()
	close(stop)
	churn.Wait()
	close(idsCh)
	for id := range idsCh {
		rec, err := s.Get(id)
		if err != nil || rec.State != Ready {
			t.Fatalf("post-churn Get(%s) = %+v, %v", id.Short(), rec, err)
		}
	}
	st := s.ReplicationStats()
	if st.Lost != 0 {
		t.Fatalf("churn lost %d entries", st.Lost)
	}
	if d := s.ReplicaDivergence(); len(d) != 0 {
		t.Fatalf("replicas diverged after churn:\n%v", d)
	}
}
