package ownership

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"skadi/internal/idgen"
	"skadi/internal/skaderr"
)

func newShardedWith(members int) (*ShardedTable, []idgen.NodeID) {
	s := NewSharded(16)
	nodes := make([]idgen.NodeID, members)
	for i := range nodes {
		nodes[i] = idgen.Next()
		s.AddMember(nodes[i])
	}
	return s, nodes
}

func TestShardedLifecycle(t *testing.T) {
	s, _ := newShardedWith(3)
	owner, task, loc := idgen.Next(), idgen.Next(), idgen.Next()
	ids := make([]idgen.ObjectID, 50)
	for i := range ids {
		ids[i] = idgen.Next()
		if err := s.CreatePending(ids[i], owner, task); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Len(); got != len(ids) {
		t.Fatalf("Len = %d, want %d", got, len(ids))
	}
	if got := s.PendingIDs(); len(got) != len(ids) {
		t.Fatalf("PendingIDs = %d, want %d", len(got), len(ids))
	}
	// Entries must actually be spread over more than one shard.
	spread := 0
	for _, n := range s.ShardSizes() {
		if n > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("entries on %d shards, want >= 2", spread)
	}
	for _, id := range ids {
		if _, err := s.MarkReady(id, 8, loc, idgen.Nil, ""); err != nil {
			t.Fatal(err)
		}
	}
	recs := s.Records()
	if len(recs) != len(ids) {
		t.Fatalf("Records = %d, want %d", len(recs), len(ids))
	}
	for _, rec := range recs {
		if rec.State != Ready || len(rec.Locations) != 1 || rec.Locations[0] != loc {
			t.Fatalf("rec = %+v", rec)
		}
	}
	if err := s.WaitReady(context.Background(), ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(idgen.Next()); !errors.Is(err, ErrUnknownObject) {
		t.Fatalf("Get unknown = %v", err)
	}
}

// pickMigratingID creates pending entries until it finds one whose owner
// changes when `joiner` joins the ring — i.e. an entry that will be handed
// off. Ring hashing is deterministic, so probing a few IDs always finds one.
func pickMigratingID(t *testing.T, s *ShardedTable, joiner idgen.NodeID, owner, task idgen.NodeID) idgen.ObjectID {
	t.Helper()
	probe := NewRing(16)
	for _, m := range s.Members() {
		probe.Add(m)
	}
	probe.Add(joiner)
	for i := 0; i < 10000; i++ {
		id := idgen.Next()
		before, _ := s.OwnerOf(id)
		after, _ := probe.OwnerOf(id)
		if after == joiner && before != joiner {
			if err := s.CreatePending(id, owner, task); err != nil {
				t.Fatal(err)
			}
			return id
		}
	}
	t.Fatal("no migrating key found")
	return idgen.Nil
}

func TestShardedHandoffPreservesWaiters(t *testing.T) {
	s, _ := newShardedWith(3)
	joiner := idgen.Next()
	id := pickMigratingID(t, s, joiner, idgen.Next(), idgen.Next())

	done := make(chan error, 1)
	ready := make(chan struct{})
	go func() {
		close(ready)
		done <- s.WaitReady(context.Background(), id)
	}()
	<-ready
	time.Sleep(5 * time.Millisecond) // let the waiter park

	if moved := s.AddMember(joiner); moved == 0 {
		t.Fatal("AddMember moved nothing; expected at least the test entry")
	}
	if got, _ := s.OwnerOf(id); got != joiner {
		t.Fatalf("owner after join = %s, want joiner", got.Short())
	}
	if _, err := s.MarkReady(id, 4, idgen.Next(), idgen.Nil, ""); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitReady across handoff = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never released after handoff + MarkReady")
	}
}

func TestShardedHandoffPreservesForwards(t *testing.T) {
	s, nodes := newShardedWith(3)
	joiner := idgen.Next()
	id := pickMigratingID(t, s, joiner, idgen.Next(), idgen.Next())
	a, b := nodes[0], nodes[1]
	if _, err := s.MarkReady(id, 4, a, idgen.Nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.MoveLocation(id, a, b); err != nil {
		t.Fatal(err)
	}
	s.AddMember(joiner)
	to, found := s.ResolveForward(id, a)
	if !found || to != b {
		t.Fatalf("forward after handoff = (%s,%v), want (%s,true)", to.Short(), found, b.Short())
	}
}

func TestShardedSubscribeAcrossHandoff(t *testing.T) {
	s, _ := newShardedWith(3)
	joiner := idgen.Next()
	id := pickMigratingID(t, s, joiner, idgen.Next(), idgen.Next())
	sub := idgen.Next()
	if ready, _, err := s.Subscribe(id, sub); err != nil || ready {
		t.Fatalf("Subscribe = (%v,%v)", ready, err)
	}
	s.AddMember(joiner)
	loc := idgen.Next()
	subs, err := s.MarkReady(id, 4, loc, idgen.Nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0] != sub {
		t.Fatalf("subscribers after handoff = %v, want [%s]", subs, sub.Short())
	}
}

func TestShardedRemoveMemberHandsOff(t *testing.T) {
	s, nodes := newShardedWith(4)
	owner, task := idgen.Next(), idgen.Next()
	ids := make([]idgen.ObjectID, 80)
	for i := range ids {
		ids[i] = idgen.Next()
		if err := s.CreatePending(ids[i], owner, task); err != nil {
			t.Fatal(err)
		}
	}
	victim := nodes[1]
	s.RemoveMember(victim)
	if s.Len() != len(ids) {
		t.Fatalf("Len after RemoveMember = %d, want %d", s.Len(), len(ids))
	}
	for _, id := range ids {
		if _, err := s.Get(id); err != nil {
			t.Fatalf("Get(%s) after handoff: %v", id.Short(), err)
		}
		if host, _ := s.OwnerOf(id); host == victim {
			t.Fatal("id still routed to removed member")
		}
	}
	if s.RemoveMember(victim) != 0 {
		t.Fatal("second RemoveMember not a no-op")
	}
}

func TestShardedLastMemberOrphans(t *testing.T) {
	s, nodes := newShardedWith(1)
	id, owner, task := idgen.Next(), idgen.Next(), idgen.Next()
	if err := s.CreatePending(id, owner, task); err != nil {
		t.Fatal(err)
	}
	s.RemoveMember(nodes[0])
	if err := s.CreatePending(idgen.Next(), owner, task); !errors.Is(err, ErrNoShards) {
		t.Fatalf("create on empty ring = %v", err)
	}
	if skaderr.CodeOf(errNoShards()) != skaderr.Unavailable {
		t.Fatalf("ErrNoShards code = %v", skaderr.CodeOf(errNoShards()))
	}
	if s.Len() != 1 || len(s.PendingIDs()) != 1 {
		t.Fatalf("orphan not accounted: Len=%d", s.Len())
	}
	// Rejoining adopts the orphan.
	fresh := idgen.Next()
	s.AddMember(fresh)
	if _, err := s.Get(id); err != nil {
		t.Fatalf("Get after orphan adoption: %v", err)
	}
	if _, err := s.MarkReady(id, 4, idgen.Next(), idgen.Nil, ""); err != nil {
		t.Fatalf("MarkReady after orphan adoption: %v", err)
	}
}

func TestShardedCommitGuardCoversNewShards(t *testing.T) {
	s, _ := newShardedWith(2)
	bad := idgen.Next()
	s.SetCommitGuard(func(loc idgen.NodeID, _ idgen.ObjectID) bool { return loc != bad })
	joiner := idgen.Next()
	id := pickMigratingID(t, s, joiner, idgen.Next(), idgen.Next())
	s.AddMember(joiner)
	// The entry now lives on a shard created after SetCommitGuard; the
	// guard must still apply there.
	if _, err := s.MarkReady(id, 4, bad, idgen.Nil, ""); skaderr.CodeOf(err) != skaderr.Unavailable {
		t.Fatalf("guard bypassed on new shard: %v", err)
	}
	if _, err := s.MarkReady(id, 4, idgen.Next(), idgen.Nil, ""); err != nil {
		t.Fatal(err)
	}
}

// TestShardedChurnRace hammers the directory from concurrent writers while
// membership churns — run under -race this is the shard-handoff-vs-ops
// data-race probe.
func TestShardedChurnRace(t *testing.T) {
	s, _ := newShardedWith(3)
	owner, task := idgen.Next(), idgen.Next()
	const workers = 4
	const perWorker = 200
	var wg sync.WaitGroup
	idsCh := make(chan idgen.ObjectID, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := idgen.Next()
				if err := s.CreatePending(id, owner, task); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.MarkReady(id, 4, owner, idgen.Nil, ""); err != nil {
					t.Error(err)
					return
				}
				if err := s.WaitReady(context.Background(), id); err != nil {
					t.Error(err)
					return
				}
				idsCh <- id
			}
		}()
	}
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		var extras []idgen.NodeID
		for {
			select {
			case <-stop:
				return
			default:
			}
			n := idgen.Next()
			s.AddMember(n)
			extras = append(extras, n)
			if len(extras) > 2 {
				s.RemoveMember(extras[0])
				extras = extras[1:]
			}
		}
	}()
	wg.Wait()
	// Every entry now exists, so any churn iteration from here must move
	// some; under a loaded scheduler the churn goroutine may not have run
	// at all yet, so give it a bounded beat before stopping — otherwise
	// the handoffs assertion below flakes on starvation, not on a bug.
	for i := 0; i < 1000 && s.Handoffs() == 0; i++ {
		time.Sleep(100 * time.Microsecond)
	}
	close(stop)
	churn.Wait()
	close(idsCh)
	count := 0
	for id := range idsCh {
		rec, err := s.Get(id)
		if err != nil || rec.State != Ready {
			t.Fatalf("post-churn Get(%s) = %+v, %v", id.Short(), rec, err)
		}
		count++
	}
	if count != workers*perWorker {
		t.Fatalf("resolved %d of %d", count, workers*perWorker)
	}
	if s.Handoffs() == 0 {
		t.Fatal("churn produced no handoffs; test proved nothing")
	}
}
