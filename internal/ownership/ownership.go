// Package ownership implements the distributed-futures ownership table,
// Skadi's extension of Ray's ownership protocol (§2.3.2): every object has
// an owner, a state, and a location set; and — the paper's modification —
// a DeviceID plus a DeviceHandle so objects resident in heterogeneous
// device memory (GPU HBM behind a DPU) are first-class table entries.
//
// The table supports both of the paper's future-resolution protocols:
//
//   - Pull: consumers call WaitReady and then fetch from a location
//     (Ray's vanilla model; creates stalls for short ops).
//   - Push: consumers Subscribe before the producer finishes; MarkReady
//     returns the subscriber set so the producer's raylet can push the
//     value proactively.
package ownership

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"skadi/internal/idgen"
	"skadi/internal/skaderr"
)

// State is an object's lifecycle state.
type State int

// Object states.
const (
	// Pending means the producing task has not yet committed the value.
	Pending State = iota
	// Ready means at least one location holds the value.
	Ready
	// Lost means every location failed before the value was consumed;
	// recovery requires lineage re-execution or a reliable cache.
	Lost
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Ready:
		return "ready"
	case Lost:
		return "lost"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Errors returned by the table.
var (
	// ErrUnknownObject reports an ID with no table entry.
	ErrUnknownObject = errors.New("ownership: unknown object")
	// ErrObjectLost reports a wait on an object whose copies all failed.
	ErrObjectLost = errors.New("ownership: object lost")
	// ErrExists reports a duplicate CreatePending.
	ErrExists = errors.New("ownership: object already registered")
)

// errUnknown builds the coded not-found error for id: the sentinel stays in
// the chain for in-process callers, the NotFound code survives the wire.
func errUnknown(id idgen.ObjectID) error {
	return skaderr.Mark(skaderr.NotFound, fmt.Errorf("%w: %s", ErrUnknownObject, id.Short()))
}

// errLost builds the coded data-loss error for id.
func errLost(id idgen.ObjectID) error {
	return skaderr.Mark(skaderr.DataLoss, fmt.Errorf("%w: %s", ErrObjectLost, id.Short()))
}

// errStaleCommit builds the coded error for a commit naming a location that
// no longer holds the bytes.
func errStaleCommit(id idgen.ObjectID, loc idgen.NodeID) error {
	return skaderr.Mark(skaderr.Unavailable,
		fmt.Errorf("ownership: stale commit of %s at %s: location holds no copy", id.Short(), loc.Short()))
}

// CommitGuard validates a claimed location at commit time, under the table
// lock. It reports whether the node genuinely holds the object (or the
// object is redundantly recoverable without it). The guard closes the
// commit-vs-crash race: a producer can finish its local write, die, have
// its store wiped and its locations purged — and only then does its
// own.ready land at the head. Without the guard that late commit
// resurrects a location with no bytes behind it; with it, the commit is
// rejected typed and the task fails over to lineage recovery.
type CommitGuard func(location idgen.NodeID, id idgen.ObjectID) bool

// Record is one ownership-table entry.
type Record struct {
	ID    idgen.ObjectID
	Owner idgen.NodeID
	State State
	Size  int64
	// Task is the producing task, the hook lineage recovery starts from.
	Task idgen.TaskID

	// Locations holds the nodes with a full copy, sorted.
	Locations []idgen.NodeID

	// DeviceID and DeviceHandle are the heterogeneity-aware extension:
	// when the value lives in device memory, DeviceID names the device and
	// DeviceHandle carries the opaque driver handle needed to reach it.
	DeviceID     idgen.NodeID
	DeviceHandle string
}

type entry struct {
	rec         Record
	locations   map[idgen.NodeID]bool
	waiters     []chan State
	subscribers map[idgen.NodeID]bool
	// forwards maps a node that used to hold the object to the node its
	// copy migrated to — the tombstone-forward entries in-flight pulls
	// chase when they race a live migration.
	forwards map[idgen.NodeID]idgen.NodeID
}

// Table is the ownership table. It is a passive, concurrency-safe data
// structure; the runtime hosts one on the head node and exposes it over the
// transport.
type Table struct {
	mu      sync.Mutex
	entries map[idgen.ObjectID]*entry
	guard   CommitGuard
	// oplog, when set, observes every successful mutation under mu — in
	// apply order — so a replica can mirror this table (replica.go).
	// Handoff moves (takeMisplaced/takeAll/adopt) bypass it: membership
	// changes resync replicas wholesale instead.
	oplog func(repOp)
}

// NewTable returns an empty table.
func NewTable() *Table {
	return &Table{entries: make(map[idgen.ObjectID]*entry)}
}

// SetCommitGuard installs the residency validator consulted by MarkReady
// and AddLocation. Call before serving traffic; a nil guard (the default)
// accepts every commit. The guard runs under the table lock, so its
// serialization against location-purging writers (RemoveNodeLocations) is
// what closes the race — it must not call back into the table.
func (t *Table) SetCommitGuard(g CommitGuard) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.guard = g
}

// setOpLog installs the mutation observer. Like the commit guard it runs
// under the table lock and must not call back into this table.
func (t *Table) setOpLog(fn func(repOp)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.oplog = fn
}

// logOp forwards a successful mutation to the observer. Caller holds mu.
func (t *Table) logOp(op repOp) {
	if t.oplog != nil {
		t.oplog(op)
	}
}

// CreatePending registers a new object in Pending state.
func (t *Table) CreatePending(id idgen.ObjectID, owner idgen.NodeID, task idgen.TaskID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.entries[id]; ok {
		return skaderr.Mark(skaderr.AlreadyExists, ErrExists)
	}
	t.entries[id] = &entry{
		rec:         Record{ID: id, Owner: owner, State: Pending, Task: task},
		locations:   make(map[idgen.NodeID]bool),
		subscribers: make(map[idgen.NodeID]bool),
	}
	t.logOp(repOp{kind: opCreate, id: id, owner: owner, task: task})
	return nil
}

// MarkReady commits the object at the given location, with optional device
// placement, and returns the subscribers awaiting a push. Waiters blocked
// in WaitReady are released.
func (t *Table) MarkReady(id idgen.ObjectID, size int64, location idgen.NodeID, deviceID idgen.NodeID, deviceHandle string) ([]idgen.NodeID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return nil, errUnknown(id)
	}
	// Device placements keep their bytes in device memory, not the node's
	// object store — the residency guard only applies to host commits.
	if t.guard != nil && deviceID.IsNil() && !t.guard(location, id) {
		return nil, errStaleCommit(id, location)
	}
	e.rec.State = Ready
	e.rec.Size = size
	e.rec.DeviceID = deviceID
	e.rec.DeviceHandle = deviceHandle
	e.locations[location] = true
	e.syncLocations()
	for _, w := range e.waiters {
		w <- Ready
	}
	e.waiters = nil
	subs := make([]idgen.NodeID, 0, len(e.subscribers))
	for node := range e.subscribers {
		if node != location {
			subs = append(subs, node)
		}
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i].Less(subs[j]) })
	e.subscribers = make(map[idgen.NodeID]bool)
	t.logOp(repOp{kind: opReady, id: id, size: size, node: location, device: deviceID, handle: deviceHandle})
	return subs, nil
}

// syncLocations refreshes rec.Locations from the location set. Caller
// holds mu. A fresh slice is built every time: Get hands out rec by value,
// so the old backing array may still be read lock-free by a caller — it
// must stay an immutable (if stale) snapshot, never be rewritten in place.
func (e *entry) syncLocations() {
	e.rec.Locations = make([]idgen.NodeID, 0, len(e.locations))
	for node := range e.locations {
		e.rec.Locations = append(e.rec.Locations, node)
	}
	sort.Slice(e.rec.Locations, func(i, j int) bool {
		return e.rec.Locations[i].Less(e.rec.Locations[j])
	})
}

// AddLocation records an additional full copy (e.g. after a push or a
// cached read).
func (t *Table) AddLocation(id idgen.ObjectID, node idgen.NodeID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return errUnknown(id)
	}
	if t.guard != nil && !t.guard(node, id) {
		return errStaleCommit(id, node)
	}
	e.locations[node] = true
	e.syncLocations()
	t.logOp(repOp{kind: opAddLoc, id: id, node: node})
	return nil
}

// MoveLocation atomically retargets a copy from one node to another: the
// destination is added to the location set, the source is removed, and a
// forwarding entry source → destination is recorded so readers holding a
// stale location list can chase the move (live migration's cutover step).
// The object must be Ready with a copy at from (or already moved, which is
// a no-op if the forward matches).
func (t *Table) MoveLocation(id idgen.ObjectID, from, to idgen.NodeID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return errUnknown(id)
	}
	e.locations[to] = true
	delete(e.locations, from)
	if e.forwards == nil {
		e.forwards = make(map[idgen.NodeID]idgen.NodeID)
	}
	e.forwards[from] = to
	// A forward pointing back at from (ping-pong migration) would loop;
	// drop the destination's own stale forward, if any.
	delete(e.forwards, to)
	e.syncLocations()
	t.logOp(repOp{kind: opMoveLoc, id: id, node: from, node2: to})
	return nil
}

// ResolveForward chases the forwarding chain from a stale location and
// returns the current holder, or false if the node never forwarded the
// object. Chains are bounded by the number of entries, so ping-pong
// migrations cannot loop.
func (t *Table) ResolveForward(id idgen.ObjectID, stale idgen.NodeID) (idgen.NodeID, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok || e.forwards == nil {
		return idgen.Nil, false
	}
	cur, ok := e.forwards[stale]
	if !ok {
		return idgen.Nil, false
	}
	for i := 0; i < len(e.forwards); i++ {
		next, more := e.forwards[cur]
		if !more || next == cur {
			break
		}
		cur = next
	}
	return cur, true
}

// Subscribe registers node for a proactive push of id when it becomes
// ready. If the object is already Ready it returns (true, record) and the
// caller pushes immediately; otherwise the subscription is stored.
func (t *Table) Subscribe(id idgen.ObjectID, node idgen.NodeID) (ready bool, rec Record, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return false, Record{}, errUnknown(id)
	}
	if e.rec.State == Ready {
		return true, e.rec, nil
	}
	e.subscribers[node] = true
	t.logOp(repOp{kind: opSubscribe, id: id, node: node})
	return false, e.rec, nil
}

// Get returns the record for id.
func (t *Table) Get(id idgen.ObjectID) (Record, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return Record{}, errUnknown(id)
	}
	return e.rec, nil
}

// Records snapshots every entry, sorted by ID. Location slices are copied:
// invariant checkers walk the snapshot while the table keeps mutating.
func (t *Table) Records() []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, 0, len(t.entries))
	for _, e := range t.entries {
		rec := e.rec
		rec.Locations = append([]idgen.NodeID(nil), rec.Locations...)
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

// WaitReady blocks until the object is Ready (nil), Lost (ErrObjectLost),
// or the context is done.
func (t *Table) WaitReady(ctx context.Context, id idgen.ObjectID) error {
	ch, err := t.waitChan(id)
	if err != nil || ch == nil {
		return err
	}
	return awaitState(ctx, id, ch)
}

// waitChan is the non-blocking half of WaitReady: it resolves immediately
// (nil channel) when the object is already Ready or Lost, or registers a
// waiter and returns its channel. ShardedTable uses the split so the park
// happens outside the shard-routing lock.
func (t *Table) waitChan(id idgen.ObjectID) (chan State, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return nil, errUnknown(id)
	}
	switch e.rec.State {
	case Ready:
		return nil, nil
	case Lost:
		return nil, errLost(id)
	}
	ch := make(chan State, 1)
	e.waiters = append(e.waiters, ch)
	// The waiter channel itself replicates: if this table's host dies
	// before the object resolves, the promoted replica still holds the
	// channel and the eventual MarkReady/MarkLost on the promoted shard
	// releases the parked caller.
	t.logOp(repOp{kind: opWaiter, id: id, waiter: ch})
	return ch, nil
}

// awaitState parks on a waiter channel registered by waitChan.
func awaitState(ctx context.Context, id idgen.ObjectID, ch chan State) error {
	select {
	case s := <-ch:
		if s == Lost {
			return errLost(id)
		}
		return nil
	case <-ctx.Done():
		return skaderr.Mark(skaderr.CodeOf(ctx.Err()), ctx.Err())
	}
}

// AbortPending marks every still-Pending object Lost, releasing its waiters,
// and returns the aborted IDs. Shutdown uses this so no Get/Wait caller stays
// blocked on an object that will never be produced.
// PendingIDs returns the IDs of all still-Pending objects, sorted. Shutdown
// uses it to record failure causes BEFORE AbortPending wakes the waiters, so
// a released Get never observes a bare loss.
func (t *Table) PendingIDs() []idgen.ObjectID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]idgen.ObjectID, 0, len(t.entries))
	for id, e := range t.entries {
		if e.rec.State == Pending {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func (t *Table) AbortPending() []idgen.ObjectID {
	t.mu.Lock()
	defer t.mu.Unlock()
	aborted := make([]idgen.ObjectID, 0, len(t.entries))
	for id, e := range t.entries {
		if e.rec.State != Pending {
			continue
		}
		e.rec.State = Lost
		aborted = append(aborted, id)
		for _, w := range e.waiters {
			w <- Lost
		}
		e.waiters = nil
	}
	sort.Slice(aborted, func(i, j int) bool { return aborted[i].Less(aborted[j]) })
	if len(aborted) > 0 {
		t.logOp(repOp{kind: opAbort})
	}
	return aborted
}

// RemoveNodeLocations drops every location on a failed node and returns the
// IDs of objects that thereby lost their last copy (now state Lost). The
// runtime feeds these to lineage recovery.
func (t *Table) RemoveNodeLocations(node idgen.NodeID) []idgen.ObjectID {
	t.mu.Lock()
	defer t.mu.Unlock()
	var lost []idgen.ObjectID
	for id, e := range t.entries {
		if !e.locations[node] {
			continue
		}
		delete(e.locations, node)
		e.syncLocations()
		if len(e.locations) == 0 && e.rec.State == Ready {
			e.rec.State = Lost
			lost = append(lost, id)
			for _, w := range e.waiters {
				w <- Lost
			}
			e.waiters = nil
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i].Less(lost[j]) })
	t.logOp(repOp{kind: opRemoveNode, node: node})
	return lost
}

// MarkLost forces an object into the Lost state, releasing waiters with an
// error.
func (t *Table) MarkLost(id idgen.ObjectID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return errUnknown(id)
	}
	e.rec.State = Lost
	e.locations = make(map[idgen.NodeID]bool)
	e.syncLocations()
	for _, w := range e.waiters {
		w <- Lost
	}
	e.waiters = nil
	t.logOp(repOp{kind: opMarkLost, id: id})
	return nil
}

// Reset returns an object to Pending so a lineage re-execution can commit
// it again. Existing waiters stay blocked until the new MarkReady.
func (t *Table) Reset(id idgen.ObjectID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.entries[id]
	if !ok {
		return errUnknown(id)
	}
	e.rec.State = Pending
	e.locations = make(map[idgen.NodeID]bool)
	e.forwards = nil // re-execution commits fresh copies; old forwards are moot
	e.syncLocations()
	t.logOp(repOp{kind: opReset, id: id})
	return nil
}

// Delete removes an object's entry entirely.
func (t *Table) Delete(id idgen.ObjectID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.entries[id]; ok {
		for _, w := range e.waiters {
			w <- Lost
		}
		delete(t.entries, id)
		t.logOp(repOp{kind: opDelete, id: id})
	}
}

// Len returns the number of table entries.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// takeMisplaced removes and returns every entry whose ID fails the keep
// predicate. Entries move whole — waiter channels, subscriber sets, and the
// PR 2 forwarding chains travel with the record, so a WaitReady parked
// before a shard handoff is still released by a MarkReady that lands on the
// entry's new shard, and stale-location pulls keep chasing forwards across
// the move.
func (t *Table) takeMisplaced(keep func(idgen.ObjectID) bool) map[idgen.ObjectID]*entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out map[idgen.ObjectID]*entry
	for id, e := range t.entries {
		if keep(id) {
			continue
		}
		if out == nil {
			out = make(map[idgen.ObjectID]*entry)
		}
		out[id] = e
		delete(t.entries, id)
	}
	return out
}

// takeAll removes and returns every entry (shard decommission).
func (t *Table) takeAll() map[idgen.ObjectID]*entry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.entries
	t.entries = make(map[idgen.ObjectID]*entry)
	return out
}

// adopt inserts entries taken from another shard. An ID that already exists
// locally is kept as-is and the incoming entry is dropped; handoff runs
// under the sharded table's exclusive lock, so this only arises from a
// malformed double-move.
func (t *Table) adopt(m map[idgen.ObjectID]*entry) {
	if len(m) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for id, e := range m {
		if _, ok := t.entries[id]; ok {
			continue
		}
		t.entries[id] = e
	}
}
