package ownership

import (
	"fmt"
	"sort"

	"skadi/internal/idgen"
)

// Shard replication (PR 10). Each primary shard streams its mutations —
// via the Table op-log hook — into a bounded per-primary log that drains
// asynchronously onto a replica Table hosted at the primary's ring
// successor. The replica is a full Table (entries, waiter channels,
// subscriber sets, forwarding chains) with one difference: ops are applied
// silently. The primary already signalled its waiters and returned its
// subscriber lists; the replica only has to END UP in the same state so
// that promotion on a primary death restores every entry without lineage
// replay, and a still-parked WaitReady is released by the next MarkReady
// that lands on the promoted shard.

// replogCap bounds each replication log. Appending to a full log drains it
// inline — replication lag is bounded by construction, and a promotion
// never has more than replogCap ops to catch up.
const replogCap = 256

type repOpKind uint8

const (
	opCreate repOpKind = iota
	opReady
	opAddLoc
	opMoveLoc
	opSubscribe
	opWaiter
	opMarkLost
	opReset
	opDelete
	opRemoveNode // table-scoped: RemoveNodeLocations(node)
	opAbort      // table-scoped: AbortPending
)

// repOp is one logged mutation. Field use varies by kind; see applyRep.
type repOp struct {
	kind   repOpKind
	id     idgen.ObjectID
	owner  idgen.NodeID
	task   idgen.TaskID
	size   int64
	node   idgen.NodeID // location / subscriber / from / purged node
	node2  idgen.NodeID // MoveLocation destination
	device idgen.NodeID
	handle string
	waiter chan State
}

// applyRep replays one op onto a replica table. No waiter is ever
// signalled and no commit guard consulted: the primary did both when the
// op originally ran; this path only reproduces the resulting state.
func (t *Table) applyRep(op repOp) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch op.kind {
	case opCreate:
		if _, ok := t.entries[op.id]; !ok {
			t.entries[op.id] = &entry{
				rec:         Record{ID: op.id, Owner: op.owner, State: Pending, Task: op.task},
				locations:   make(map[idgen.NodeID]bool),
				subscribers: make(map[idgen.NodeID]bool),
			}
		}
	case opReady:
		if e, ok := t.entries[op.id]; ok {
			e.rec.State = Ready
			e.rec.Size = op.size
			e.rec.DeviceID = op.device
			e.rec.DeviceHandle = op.handle
			e.locations[op.node] = true
			e.syncLocations()
			e.waiters = nil // primary released them
			e.subscribers = make(map[idgen.NodeID]bool)
		}
	case opAddLoc:
		if e, ok := t.entries[op.id]; ok {
			e.locations[op.node] = true
			e.syncLocations()
		}
	case opMoveLoc:
		if e, ok := t.entries[op.id]; ok {
			e.locations[op.node2] = true
			delete(e.locations, op.node)
			if e.forwards == nil {
				e.forwards = make(map[idgen.NodeID]idgen.NodeID)
			}
			e.forwards[op.node] = op.node2
			delete(e.forwards, op.node2)
			e.syncLocations()
		}
	case opSubscribe:
		if e, ok := t.entries[op.id]; ok {
			e.subscribers[op.node] = true
		}
	case opWaiter:
		if e, ok := t.entries[op.id]; ok && e.rec.State == Pending {
			e.waiters = append(e.waiters, op.waiter)
		}
	case opMarkLost:
		if e, ok := t.entries[op.id]; ok {
			e.rec.State = Lost
			e.locations = make(map[idgen.NodeID]bool)
			e.syncLocations()
			e.waiters = nil
		}
	case opReset:
		if e, ok := t.entries[op.id]; ok {
			e.rec.State = Pending
			e.locations = make(map[idgen.NodeID]bool)
			e.forwards = nil
			e.syncLocations()
		}
	case opDelete:
		delete(t.entries, op.id)
	case opRemoveNode:
		for _, e := range t.entries {
			if !e.locations[op.node] {
				continue
			}
			delete(e.locations, op.node)
			e.syncLocations()
			if len(e.locations) == 0 && e.rec.State == Ready {
				e.rec.State = Lost
				e.waiters = nil
			}
		}
	case opAbort:
		for _, e := range t.entries {
			if e.rec.State != Pending {
				continue
			}
			e.rec.State = Lost
			e.waiters = nil
		}
	}
}

// cloneForReplica deep-copies the table into a fresh replica: records,
// location sets, subscriber sets, and forwarding chains are copied; waiter
// CHANNELS are shared (they are the rendezvous with the parked caller —
// sharing is the point). Membership churn uses this to (re)seed a replica
// wholesale, since handoff moves bypass the op-log.
func (t *Table) cloneForReplica() *Table {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := NewTable()
	for id, e := range t.entries {
		ne := &entry{
			rec:         e.rec,
			locations:   make(map[idgen.NodeID]bool, len(e.locations)),
			subscribers: make(map[idgen.NodeID]bool, len(e.subscribers)),
		}
		ne.rec.Locations = append([]idgen.NodeID(nil), e.rec.Locations...)
		for n := range e.locations {
			ne.locations[n] = true
		}
		for n := range e.subscribers {
			ne.subscribers[n] = true
		}
		if len(e.forwards) > 0 {
			ne.forwards = make(map[idgen.NodeID]idgen.NodeID, len(e.forwards))
			for k, v := range e.forwards {
				ne.forwards[k] = v
			}
		}
		ne.waiters = append([]chan State(nil), e.waiters...)
		out.entries[id] = ne
	}
	return out
}

// diffReplica reports human-readable mismatches between a primary table
// and its (fully drained) replica: entries present on one side only, or
// records/waiters/subscribers/forwards that diverge. Both tables are
// locked primary-first; callers must quiesce mutations (the sharded table
// holds its write lock).
func diffReplica(primary, replica *Table) []string {
	primary.mu.Lock()
	defer primary.mu.Unlock()
	replica.mu.Lock()
	defer replica.mu.Unlock()
	var out []string
	ids := make([]idgen.ObjectID, 0, len(primary.entries))
	for id := range primary.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for _, id := range ids {
		pe := primary.entries[id]
		re, ok := replica.entries[id]
		if !ok {
			out = append(out, fmt.Sprintf("%s: missing from replica", id.Short()))
			continue
		}
		if d := diffEntry(pe, re); d != "" {
			out = append(out, fmt.Sprintf("%s: %s", id.Short(), d))
		}
	}
	for id := range replica.entries {
		if _, ok := primary.entries[id]; !ok {
			out = append(out, fmt.Sprintf("%s: replica-only entry", id.Short()))
		}
	}
	return out
}

func diffEntry(p, r *entry) string {
	if p.rec.Owner != r.rec.Owner || p.rec.State != r.rec.State ||
		p.rec.Size != r.rec.Size || p.rec.Task != r.rec.Task ||
		p.rec.DeviceID != r.rec.DeviceID || p.rec.DeviceHandle != r.rec.DeviceHandle {
		return fmt.Sprintf("record diverges: primary %v/%d, replica %v/%d",
			p.rec.State, p.rec.Size, r.rec.State, r.rec.Size)
	}
	if len(p.locations) != len(r.locations) {
		return fmt.Sprintf("locations diverge: %d vs %d", len(p.locations), len(r.locations))
	}
	for n := range p.locations {
		if !r.locations[n] {
			return fmt.Sprintf("location %s missing from replica", n.Short())
		}
	}
	if len(p.waiters) != len(r.waiters) {
		return fmt.Sprintf("waiters diverge: %d vs %d", len(p.waiters), len(r.waiters))
	}
	if len(p.subscribers) != len(r.subscribers) {
		return fmt.Sprintf("subscribers diverge: %d vs %d", len(p.subscribers), len(r.subscribers))
	}
	for n := range p.subscribers {
		if !r.subscribers[n] {
			return fmt.Sprintf("subscriber %s missing from replica", n.Short())
		}
	}
	if len(p.forwards) != len(r.forwards) {
		return fmt.Sprintf("forwards diverge: %d vs %d", len(p.forwards), len(r.forwards))
	}
	for k, v := range p.forwards {
		if r.forwards[k] != v {
			return fmt.Sprintf("forward %s diverges", k.Short())
		}
	}
	return ""
}
