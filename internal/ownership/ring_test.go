package ownership

import (
	"testing"

	"skadi/internal/idgen"
)

func ringMembers(n int) []idgen.NodeID {
	out := make([]idgen.NodeID, n)
	for i := range out {
		out[i] = idgen.Next()
	}
	return out
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.OwnerOf(idgen.Next()); ok {
		t.Fatal("empty ring returned an owner")
	}
	if r.Len() != 0 || r.Version() != 0 {
		t.Fatalf("Len=%d Version=%d", r.Len(), r.Version())
	}
}

func TestRingAddRemoveIdempotent(t *testing.T) {
	r := NewRing(8)
	n := idgen.Next()
	if !r.Add(n) || r.Add(n) {
		t.Fatal("Add idempotence broken")
	}
	if !r.Has(n) {
		t.Fatal("Has = false after Add")
	}
	if !r.Remove(n) || r.Remove(n) {
		t.Fatal("Remove idempotence broken")
	}
	if r.Version() != 2 {
		t.Fatalf("Version = %d, want 2 (no-ops must not bump)", r.Version())
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(DefaultVNodes)
	members := ringMembers(8)
	for _, m := range members {
		r.Add(m)
	}
	counts := make(map[idgen.NodeID]int)
	const keys = 20000
	for i := 0; i < keys; i++ {
		owner, ok := r.OwnerOf(idgen.FromSeq(uint64(i)))
		if !ok {
			t.Fatal("no owner")
		}
		counts[owner]++
	}
	mean := keys / len(members)
	for _, m := range members {
		c := counts[m]
		if c < mean*2/5 || c > mean*5/2 {
			t.Errorf("member load %d outside [%d,%d] of mean %d", c, mean*2/5, mean*5/2, mean)
		}
	}
}

func TestRingAddMovesOnlyToNewMember(t *testing.T) {
	r := NewRing(DefaultVNodes)
	members := ringMembers(8)
	for _, m := range members {
		r.Add(m)
	}
	const keys = 5000
	before := make([]idgen.NodeID, keys)
	for i := range before {
		before[i], _ = r.OwnerOf(idgen.FromSeq(uint64(i)))
	}
	fresh := idgen.Next()
	r.Add(fresh)
	moved := 0
	for i := 0; i < keys; i++ {
		after, _ := r.OwnerOf(idgen.FromSeq(uint64(i)))
		if after != before[i] {
			moved++
			if after != fresh {
				t.Fatalf("key %d moved to %s, not the new member", i, after.Short())
			}
		}
	}
	// Expected churn ≈ keys/9; allow a wide band, but it must be a small
	// minority — the whole point of consistent hashing.
	if moved == 0 || moved > keys/3 {
		t.Errorf("moved %d of %d keys on a 1-of-9 membership change", moved, keys)
	}
}

func TestRingRemoveKeepsSurvivorKeys(t *testing.T) {
	r := NewRing(DefaultVNodes)
	members := ringMembers(6)
	for _, m := range members {
		r.Add(m)
	}
	const keys = 5000
	before := make([]idgen.NodeID, keys)
	for i := range before {
		before[i], _ = r.OwnerOf(idgen.FromSeq(uint64(i)))
	}
	victim := members[2]
	r.Remove(victim)
	for i := 0; i < keys; i++ {
		after, _ := r.OwnerOf(idgen.FromSeq(uint64(i)))
		if before[i] != victim && after != before[i] {
			t.Fatalf("key %d owned by survivor %s moved to %s", i, before[i].Short(), after.Short())
		}
		if after == victim {
			t.Fatalf("key %d still routed to removed member", i)
		}
	}
}
