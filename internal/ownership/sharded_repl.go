package ownership

import (
	"fmt"
	"sort"
	"sync"

	"skadi/internal/idgen"
)

// replState is one primary's replication fan-out: a bounded log of ops not
// yet applied to the replica table hosted at the primary's ring successor.
// The log fills synchronously (inside the primary's mutation, under the
// primary table's lock) and drains asynchronously (the runtime's gossip
// pump calls FlushReplication every tick); appending to a full log drains
// inline, so lag is bounded by replogCap regardless of pump cadence.
type replState struct {
	host  idgen.NodeID // ring successor hosting this replica
	mu    sync.Mutex
	log   []repOp
	table *Table
}

// appendRep logs one mutation of primary's shard. Called from the shard's
// op-log hook: the caller holds the shard table's lock and s.mu in some
// mode, so reading s.repl here is safe (the map is only written under
// s.mu exclusively).
func (s *ShardedTable) appendRep(primary idgen.NodeID, op repOp) {
	rs := s.repl[primary]
	if rs == nil {
		return
	}
	rs.mu.Lock()
	rs.log = append(rs.log, op)
	if len(rs.log) >= replogCap {
		s.drainReplLocked(rs)
	}
	rs.mu.Unlock()
	s.replAppended.Add(1)
}

// drainReplLocked applies the pending log to the replica. Caller holds
// rs.mu.
func (s *ShardedTable) drainReplLocked(rs *replState) {
	for _, op := range rs.log {
		rs.table.applyRep(op)
	}
	s.replApplied.Add(uint64(len(rs.log)))
	rs.log = rs.log[:0]
}

// syncReplicasLocked reconciles the replica set after a membership change.
// Caller holds s.mu exclusively. Handoff moves whole entries between
// shards without touching the op-log, so any primary whose shard content
// moved (touched) — and any primary whose successor changed — gets its
// replica reseeded from a deep copy of the live shard. Untouched primaries
// keep their replica and pending log.
func (s *ShardedTable) syncReplicasLocked(touched map[idgen.NodeID]bool) {
	succ := s.ring.successors()
	for primary := range s.repl {
		if _, ok := succ[primary]; !ok {
			delete(s.repl, primary)
		}
	}
	for primary, host := range succ {
		rs := s.repl[primary]
		if rs != nil && rs.host == host && !touched[primary] {
			continue
		}
		shard := s.shards[primary]
		if shard == nil {
			continue
		}
		s.repl[primary] = &replState{host: host, table: shard.cloneForReplica()}
	}
}

// RemoveMemberDead drops a shard host that died. Unlike the graceful
// RemoveMember, it never consults the dead member's own table for the
// handoff: the successor's replica is drained to the crash point and
// promoted — waiters, subscriber sets, and forwarding chains restore from
// the replica, so no lineage replay is needed to rebuild directory state.
// Returns the restored entry count and the count lost (primary entries the
// replica did not cover — zero by construction; nonzero means a
// replication bug and trips chaos invariant I7).
func (s *ShardedTable) RemoveMemberDead(n idgen.NodeID) (restored, lost int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ring.Remove(n) {
		return 0, 0
	}
	dead := s.shards[n]
	delete(s.shards, n)
	rs := s.repl[n]
	delete(s.repl, n)
	primaryLen := 0
	if dead != nil {
		// Detach the hook; the discarded table must not log into a map
		// entry that no longer exists.
		dead.setOpLog(nil)
		primaryLen = dead.Len()
	}
	var taken map[idgen.ObjectID]*entry
	switch {
	case rs != nil:
		rs.mu.Lock()
		s.drainReplLocked(rs)
		rs.mu.Unlock()
		taken = rs.table.takeAll()
	case dead != nil:
		// No successor existed (ring of one): nothing replicated this
		// shard, so the in-process table is the only copy left. This is
		// the orphan safety net, not the durability path.
		taken = dead.takeAll()
	}
	restored = len(taken)
	if lost = primaryLen - restored; lost < 0 {
		lost = 0
	}
	s.promotions++
	s.restoredEntries += uint64(restored)
	s.lostEntries += uint64(lost)
	if restored == 0 {
		s.syncReplicasLocked(nil)
		return restored, lost
	}
	if s.ring.Len() == 0 {
		if s.orphans == nil {
			s.orphans = make(map[idgen.ObjectID]*entry)
		}
		for id, e := range taken {
			s.orphans[id] = e
		}
		s.handoffs += uint64(restored)
		s.syncReplicasLocked(nil)
		return restored, lost
	}
	touched := make(map[idgen.NodeID]bool)
	byOwner := make(map[idgen.NodeID]map[idgen.ObjectID]*entry)
	for id, e := range taken {
		owner, _ := s.ring.OwnerOf(id)
		m := byOwner[owner]
		if m == nil {
			m = make(map[idgen.ObjectID]*entry)
			byOwner[owner] = m
		}
		m[id] = e
	}
	for owner, m := range byOwner {
		s.shards[owner].adopt(m)
		touched[owner] = true
	}
	s.handoffs += uint64(restored)
	s.syncReplicasLocked(touched)
	return restored, lost
}

// FlushReplication drains every pending replication log and returns the
// number of ops applied. The runtime's gossip pump calls this each tick;
// tests call it to reach a known-synced state.
func (s *ShardedTable) FlushReplication() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	applied := 0
	for _, rs := range s.repl {
		rs.mu.Lock()
		applied += len(rs.log)
		s.drainReplLocked(rs)
		rs.mu.Unlock()
	}
	return applied
}

// ReplicationStats is the durability counter snapshot surfaced in
// `skadi -trace` and consumed by chaos invariant I7.
type ReplicationStats struct {
	// Replicas is the number of shard replicas currently maintained
	// (members with a distinct ring successor).
	Replicas int
	// LogDepth is the total count of logged ops not yet applied.
	LogDepth int
	// Appended / Applied count replication-log traffic since creation.
	Appended, Applied uint64
	// Promotions counts RemoveMemberDead calls that removed a member;
	// Restored / Lost count the entries recovered from (resp. not covered
	// by) replicas across those promotions. Lost must stay zero.
	Promotions, Restored, Lost uint64
}

// ReplicationStats returns the current counters.
func (s *ShardedTable) ReplicationStats() ReplicationStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := ReplicationStats{
		Replicas:   len(s.repl),
		Appended:   s.replAppended.Load(),
		Applied:    s.replApplied.Load(),
		Promotions: s.promotions,
		Restored:   s.restoredEntries,
		Lost:       s.lostEntries,
	}
	for _, rs := range s.repl {
		rs.mu.Lock()
		st.LogDepth += len(rs.log)
		rs.mu.Unlock()
	}
	return st
}

// ReplicaDivergence flushes every replication log and compares each
// replica against its primary, returning human-readable mismatches (empty
// when every replica exactly mirrors its primary). It takes the directory
// write lock, so it observes a quiesced directory — this is the deep probe
// behind chaos invariant I7.
func (s *ShardedTable) ReplicaDivergence() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	primaries := make([]idgen.NodeID, 0, len(s.repl))
	for primary := range s.repl {
		primaries = append(primaries, primary)
	}
	sort.Slice(primaries, func(i, j int) bool { return primaries[i].Less(primaries[j]) })
	for _, primary := range primaries {
		rs := s.repl[primary]
		shard := s.shards[primary]
		if shard == nil {
			out = append(out, fmt.Sprintf("replica for non-member %s", primary.Short()))
			continue
		}
		rs.mu.Lock()
		s.drainReplLocked(rs)
		rs.mu.Unlock()
		for _, d := range diffReplica(shard, rs.table) {
			out = append(out, fmt.Sprintf("shard %s: %s", primary.Short(), d))
		}
	}
	return out
}

// Successor returns the ring successor of n — the member hosting n's
// shard replica, promoted if n dies. ok is false when the ring has fewer
// than two members or n is not one of them.
func (s *ShardedTable) Successor(n idgen.NodeID) (idgen.NodeID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.SuccessorOf(n)
}
