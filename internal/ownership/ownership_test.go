package ownership

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"skadi/internal/idgen"
)

func TestCreateAndGet(t *testing.T) {
	tbl := NewTable()
	id, owner, task := idgen.Next(), idgen.Next(), idgen.Next()
	if err := tbl.CreatePending(id, owner, task); err != nil {
		t.Fatal(err)
	}
	rec, err := tbl.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != Pending || rec.Owner != owner || rec.Task != task {
		t.Errorf("rec = %+v", rec)
	}
	if err := tbl.CreatePending(id, owner, task); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create = %v", err)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d", tbl.Len())
	}
}

func TestGetUnknown(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.Get(idgen.Next()); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("Get = %v", err)
	}
}

func TestMarkReadyWithDevicePlacement(t *testing.T) {
	tbl := NewTable()
	id, loc, dev := idgen.Next(), idgen.Next(), idgen.Next()
	if err := tbl.CreatePending(id, idgen.Next(), idgen.Next()); err != nil {
		t.Fatal(err)
	}
	subs, err := tbl.MarkReady(id, 1024, loc, dev, "cuda:0/buf#42")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 0 {
		t.Errorf("subs = %v", subs)
	}
	rec, _ := tbl.Get(id)
	if rec.State != Ready || rec.Size != 1024 {
		t.Errorf("rec = %+v", rec)
	}
	if rec.DeviceID != dev || rec.DeviceHandle != "cuda:0/buf#42" {
		t.Error("heterogeneity-aware fields not stored")
	}
	if len(rec.Locations) != 1 || rec.Locations[0] != loc {
		t.Errorf("locations = %v", rec.Locations)
	}
}

func TestMarkReadyUnknown(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.MarkReady(idgen.Next(), 1, idgen.Next(), idgen.Nil, ""); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("MarkReady = %v", err)
	}
}

func TestSubscribeBeforeReady(t *testing.T) {
	tbl := NewTable()
	id, producer := idgen.Next(), idgen.Next()
	consumer1, consumer2 := idgen.Next(), idgen.Next()
	if err := tbl.CreatePending(id, idgen.Next(), idgen.Next()); err != nil {
		t.Fatal(err)
	}
	for _, c := range []idgen.NodeID{consumer1, consumer2} {
		ready, _, err := tbl.Subscribe(id, c)
		if err != nil || ready {
			t.Fatalf("Subscribe = ready=%v err=%v", ready, err)
		}
	}
	subs, err := tbl.MarkReady(id, 10, producer, idgen.Nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("subs = %v, want both consumers", subs)
	}
	// Subscribers are consumed: a second MarkReady-like commit would see none.
	ready, rec, err := tbl.Subscribe(id, consumer1)
	if err != nil || !ready {
		t.Errorf("Subscribe after ready = %v/%v", ready, err)
	}
	if rec.State != Ready {
		t.Error("record should be ready")
	}
}

func TestSubscriberColocatedWithProducerSkipped(t *testing.T) {
	tbl := NewTable()
	id, node := idgen.Next(), idgen.Next()
	if err := tbl.CreatePending(id, idgen.Next(), idgen.Next()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tbl.Subscribe(id, node); err != nil {
		t.Fatal(err)
	}
	subs, err := tbl.MarkReady(id, 10, node, idgen.Nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 0 {
		t.Errorf("subs = %v; co-located subscriber needs no push", subs)
	}
}

func TestWaitReadyBlocksUntilReady(t *testing.T) {
	tbl := NewTable()
	id := idgen.Next()
	if err := tbl.CreatePending(id, idgen.Next(), idgen.Next()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- tbl.WaitReady(context.Background(), id)
	}()
	select {
	case err := <-done:
		t.Fatalf("WaitReady returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := tbl.MarkReady(id, 1, idgen.Next(), idgen.Nil, ""); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("WaitReady = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("WaitReady did not wake")
	}
}

func TestWaitReadyImmediate(t *testing.T) {
	tbl := NewTable()
	id := idgen.Next()
	if err := tbl.CreatePending(id, idgen.Next(), idgen.Next()); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.MarkReady(id, 1, idgen.Next(), idgen.Nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := tbl.WaitReady(context.Background(), id); err != nil {
		t.Errorf("WaitReady on ready object = %v", err)
	}
}

func TestWaitReadyContextCancel(t *testing.T) {
	tbl := NewTable()
	id := idgen.Next()
	if err := tbl.CreatePending(id, idgen.Next(), idgen.Next()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := tbl.WaitReady(ctx, id); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("WaitReady = %v", err)
	}
}

func TestWaitReadyOnLost(t *testing.T) {
	tbl := NewTable()
	id := idgen.Next()
	if err := tbl.CreatePending(id, idgen.Next(), idgen.Next()); err != nil {
		t.Fatal(err)
	}
	if err := tbl.MarkLost(id); err != nil {
		t.Fatal(err)
	}
	if err := tbl.WaitReady(context.Background(), id); !errors.Is(err, ErrObjectLost) {
		t.Errorf("WaitReady = %v", err)
	}
}

func TestRemoveNodeLocations(t *testing.T) {
	tbl := NewTable()
	nodeA, nodeB := idgen.Next(), idgen.Next()
	// obj1 only on A, obj2 on A and B, obj3 pending.
	obj1, obj2, obj3 := idgen.Next(), idgen.Next(), idgen.Next()
	for _, id := range []idgen.ObjectID{obj1, obj2, obj3} {
		if err := tbl.CreatePending(id, idgen.Next(), idgen.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.MarkReady(obj1, 1, nodeA, idgen.Nil, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.MarkReady(obj2, 1, nodeA, idgen.Nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddLocation(obj2, nodeB); err != nil {
		t.Fatal(err)
	}

	lost := tbl.RemoveNodeLocations(nodeA)
	if len(lost) != 1 || lost[0] != obj1 {
		t.Errorf("lost = %v, want [obj1]", lost)
	}
	rec1, _ := tbl.Get(obj1)
	if rec1.State != Lost {
		t.Errorf("obj1 state = %v", rec1.State)
	}
	rec2, _ := tbl.Get(obj2)
	if rec2.State != Ready || len(rec2.Locations) != 1 || rec2.Locations[0] != nodeB {
		t.Errorf("obj2 = %+v", rec2)
	}
	rec3, _ := tbl.Get(obj3)
	if rec3.State != Pending {
		t.Errorf("obj3 state = %v, pending objects unaffected", rec3.State)
	}
}

func TestNodeFailureWakesWaitersWithLost(t *testing.T) {
	tbl := NewTable()
	id, node := idgen.Next(), idgen.Next()
	if err := tbl.CreatePending(id, idgen.Next(), idgen.Next()); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.MarkReady(id, 1, node, idgen.Nil, ""); err != nil {
		t.Fatal(err)
	}
	// A waiter arrives after ready... it returns immediately. Reset to
	// pending to create a blocked waiter, then lose the node.
	if err := tbl.Reset(id); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tbl.WaitReady(context.Background(), id) }()
	time.Sleep(10 * time.Millisecond)
	if err := tbl.MarkLost(id); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrObjectLost) {
			t.Errorf("WaitReady = %v, want ErrObjectLost", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter not woken on loss")
	}
}

func TestResetAllowsRecommit(t *testing.T) {
	tbl := NewTable()
	id := idgen.Next()
	if err := tbl.CreatePending(id, idgen.Next(), idgen.Next()); err != nil {
		t.Fatal(err)
	}
	nodeA, nodeB := idgen.Next(), idgen.Next()
	if _, err := tbl.MarkReady(id, 1, nodeA, idgen.Nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Reset(id); err != nil {
		t.Fatal(err)
	}
	rec, _ := tbl.Get(id)
	if rec.State != Pending || len(rec.Locations) != 0 {
		t.Errorf("after Reset: %+v", rec)
	}
	if _, err := tbl.MarkReady(id, 2, nodeB, idgen.Nil, ""); err != nil {
		t.Fatal(err)
	}
	rec, _ = tbl.Get(id)
	if rec.State != Ready || rec.Size != 2 {
		t.Errorf("after recommit: %+v", rec)
	}
}

func TestDeleteWakesWaiters(t *testing.T) {
	tbl := NewTable()
	id := idgen.Next()
	if err := tbl.CreatePending(id, idgen.Next(), idgen.Next()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tbl.WaitReady(context.Background(), id) }()
	time.Sleep(10 * time.Millisecond)
	tbl.Delete(id)
	select {
	case err := <-done:
		if !errors.Is(err, ErrObjectLost) {
			t.Errorf("WaitReady after Delete = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter leaked on Delete")
	}
	if tbl.Len() != 0 {
		t.Error("entry not removed")
	}
}

func TestConcurrentWaitersAllWake(t *testing.T) {
	tbl := NewTable()
	id := idgen.Next()
	if err := tbl.CreatePending(id, idgen.Next(), idgen.Next()); err != nil {
		t.Fatal(err)
	}
	const waiters = 32
	var wg sync.WaitGroup
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- tbl.WaitReady(context.Background(), id)
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if _, err := tbl.MarkReady(id, 1, idgen.Next(), idgen.Nil, ""); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("waiter error: %v", err)
		}
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Pending: "pending", Ready: "ready", Lost: "lost"} {
		if s.String() != want {
			t.Errorf("String = %q", s.String())
		}
	}
}

func TestMoveLocationRecordsForward(t *testing.T) {
	tbl := NewTable()
	id := idgen.Next()
	a, b := idgen.Next(), idgen.Next()
	if err := tbl.CreatePending(id, a, idgen.Next()); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.MarkReady(id, 8, a, idgen.Nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := tbl.MoveLocation(id, a, b); err != nil {
		t.Fatal(err)
	}
	rec, err := tbl.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Locations) != 1 || rec.Locations[0] != b {
		t.Errorf("Locations = %v, want [%v]", rec.Locations, b)
	}
	to, found := tbl.ResolveForward(id, a)
	if !found || to != b {
		t.Errorf("ResolveForward(a) = %v,%v, want %v,true", to, found, b)
	}
	if _, found := tbl.ResolveForward(id, b); found {
		t.Error("ResolveForward(current holder) should report no forward")
	}
}

func TestResolveForwardChainsAndPingPong(t *testing.T) {
	tbl := NewTable()
	id := idgen.Next()
	a, b, c := idgen.Next(), idgen.Next(), idgen.Next()
	if err := tbl.CreatePending(id, a, idgen.Next()); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.MarkReady(id, 8, a, idgen.Nil, ""); err != nil {
		t.Fatal(err)
	}
	// a → b → c: a reader holding the original location must resolve to c.
	if err := tbl.MoveLocation(id, a, b); err != nil {
		t.Fatal(err)
	}
	if err := tbl.MoveLocation(id, b, c); err != nil {
		t.Fatal(err)
	}
	if to, found := tbl.ResolveForward(id, a); !found || to != c {
		t.Errorf("chained ResolveForward(a) = %v,%v, want %v,true", to, found, c)
	}
	// Ping-pong back to a: the chase must terminate at a, not loop.
	if err := tbl.MoveLocation(id, c, a); err != nil {
		t.Fatal(err)
	}
	if to, found := tbl.ResolveForward(id, b); !found || to != a {
		t.Errorf("ping-pong ResolveForward(b) = %v,%v, want %v,true", to, found, a)
	}
	if _, found := tbl.ResolveForward(id, a); found {
		t.Error("current holder must not have a forward after ping-pong")
	}
}

func TestMoveLocationConcurrentReaders(t *testing.T) {
	tbl := NewTable()
	id := idgen.Next()
	nodes := []idgen.NodeID{idgen.Next(), idgen.Next(), idgen.Next(), idgen.Next()}
	if err := tbl.CreatePending(id, nodes[0], idgen.Next()); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.MarkReady(id, 8, nodes[0], idgen.Nil, ""); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec, err := tbl.Get(id)
				if err != nil || len(rec.Locations) != 1 {
					t.Errorf("mid-migration record: %v %v", rec.Locations, err)
					return
				}
				tbl.ResolveForward(id, nodes[0])
			}
		}()
	}
	for hop := 0; hop < 64; hop++ {
		from := nodes[hop%len(nodes)]
		to := nodes[(hop+1)%len(nodes)]
		if err := tbl.MoveLocation(id, from, to); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
