package ownership

import (
	"sort"

	"skadi/internal/idgen"
)

// DefaultVNodes is the virtual-node count per ring member. 64 points per
// member keeps the expected ownership imbalance under ~15% at a few hundred
// members while membership changes stay cheap (O(vnodes·log points)).
const DefaultVNodes = 64

// Ring is a consistent-hash ring with virtual nodes: each member owns the
// arc between its predecessor point and each of its points, and an object
// hashes to the first point clockwise from its key. Adding or removing one
// member only reassigns the arcs adjacent to that member's points — the
// property that keeps directory handoff proportional to 1/members instead
// of a full reshuffle.
//
// Ring is not concurrency-safe; ShardedTable guards it with its own lock.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by hash
	members map[idgen.NodeID]bool
	version uint64
}

type ringPoint struct {
	hash uint64
	node idgen.NodeID
}

// NewRing returns an empty ring with the given virtual-node count per
// member (DefaultVNodes if vnodes <= 0).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[idgen.NodeID]bool)}
}

// fnv1a64 hashes b with FNV-1a, seeded so vnode indices decorrelate.
func fnv1a64(b []byte, seed uint64) uint64 {
	h := uint64(14695981039346656037) ^ seed
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	// Final avalanche (splitmix64 tail): FNV alone clusters on short,
	// counter-like inputs such as idgen IDs.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// keyHash hashes an object ID onto the ring.
func keyHash(id idgen.ObjectID) uint64 {
	b := [16]byte(id)
	return fnv1a64(b[:], 0)
}

// Add inserts a member's virtual nodes. Reports false if already present.
func (r *Ring) Add(n idgen.NodeID) bool {
	if r.members[n] {
		return false
	}
	r.members[n] = true
	b := [16]byte(n)
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: fnv1a64(b[:], uint64(v)+1), node: n})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	r.version++
	return true
}

// Remove deletes a member's virtual nodes. Reports false if not a member.
func (r *Ring) Remove(n idgen.NodeID) bool {
	if !r.members[n] {
		return false
	}
	delete(r.members, n)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != n {
			kept = append(kept, p)
		}
	}
	r.points = kept
	r.version++
	return true
}

// OwnerOf returns the member owning the object's key, or false on an empty
// ring.
func (r *Ring) OwnerOf(id idgen.ObjectID) (idgen.NodeID, bool) {
	if len(r.points) == 0 {
		return idgen.Nil, false
	}
	h := keyHash(id)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: keys past the last point belong to the first
	}
	return r.points[i].node, true
}

// SuccessorOf returns the member owning the first point clockwise from n's
// lowest-hash point, skipping n's own points — the natural home for n's
// shard replica: when n dies its keys land on exactly the members holding
// the next points clockwise, and the successor is the first of them.
// Reports false when the ring has fewer than two members.
func (r *Ring) SuccessorOf(n idgen.NodeID) (idgen.NodeID, bool) {
	if !r.members[n] || len(r.members) < 2 {
		return idgen.Nil, false
	}
	first := -1
	for i, p := range r.points {
		if p.node == n {
			first = i
			break
		}
	}
	if first < 0 {
		return idgen.Nil, false
	}
	for off := 1; off <= len(r.points); off++ {
		p := r.points[(first+off)%len(r.points)]
		if p.node != n {
			return p.node, true
		}
	}
	return idgen.Nil, false
}

// successors returns SuccessorOf for every member in one O(points) pass
// plus a short clockwise walk per member. Members without a successor
// (ring of one) are absent from the map.
func (r *Ring) successors() map[idgen.NodeID]idgen.NodeID {
	out := make(map[idgen.NodeID]idgen.NodeID, len(r.members))
	if len(r.members) < 2 {
		return out
	}
	first := make(map[idgen.NodeID]int, len(r.members))
	for i, p := range r.points {
		if _, ok := first[p.node]; !ok {
			first[p.node] = i
		}
	}
	for n, i := range first {
		for off := 1; off <= len(r.points); off++ {
			p := r.points[(i+off)%len(r.points)]
			if p.node != n {
				out[n] = p.node
				break
			}
		}
	}
	return out
}

// Has reports membership.
func (r *Ring) Has(n idgen.NodeID) bool { return r.members[n] }

// Members returns the member set, sorted.
func (r *Ring) Members() []idgen.NodeID {
	out := make([]idgen.NodeID, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Version increments on every membership change; routing caches use it to
// detect staleness.
func (r *Ring) Version() uint64 { return r.version }
