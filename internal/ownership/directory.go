package ownership

import (
	"context"

	"skadi/internal/idgen"
)

// Directory is the ownership-table contract shared by the centralized
// *Table and the decentralized *ShardedTable. The raylet head service and
// the runtime program against this interface, so the control plane can be
// swapped between a head-node monolith and a consistent-hash-sharded
// directory without touching the future-resolution protocols built on top.
type Directory interface {
	// SetCommitGuard installs the residency validator used by MarkReady and
	// AddLocation. Implementations must apply it to shards added later too.
	SetCommitGuard(g CommitGuard)

	CreatePending(id idgen.ObjectID, owner idgen.NodeID, task idgen.TaskID) error
	MarkReady(id idgen.ObjectID, size int64, location idgen.NodeID, deviceID idgen.NodeID, deviceHandle string) ([]idgen.NodeID, error)
	AddLocation(id idgen.ObjectID, node idgen.NodeID) error
	MoveLocation(id idgen.ObjectID, from, to idgen.NodeID) error
	ResolveForward(id idgen.ObjectID, stale idgen.NodeID) (idgen.NodeID, bool)
	Subscribe(id idgen.ObjectID, node idgen.NodeID) (ready bool, rec Record, err error)
	Get(id idgen.ObjectID) (Record, error)
	Records() []Record
	WaitReady(ctx context.Context, id idgen.ObjectID) error
	PendingIDs() []idgen.ObjectID
	AbortPending() []idgen.ObjectID
	RemoveNodeLocations(node idgen.NodeID) []idgen.ObjectID
	MarkLost(id idgen.ObjectID) error
	Reset(id idgen.ObjectID) error
	Delete(id idgen.ObjectID)
	Len() int
}

// Compile-time checks: both control planes satisfy the contract.
var (
	_ Directory = (*Table)(nil)
	_ Directory = (*ShardedTable)(nil)
)
