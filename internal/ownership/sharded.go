package ownership

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"skadi/internal/idgen"
	"skadi/internal/skaderr"
)

// ErrNoShards reports an ownership op against a sharded directory with no
// ring members (all shard hosts removed and none re-added).
var ErrNoShards = errors.New("ownership: sharded directory has no members")

func errNoShards() error {
	return skaderr.Mark(skaderr.Unavailable, ErrNoShards)
}

// ShardedTable is the decentralized ownership directory: a consistent-hash
// Ring routes every object ID to a member node, and each member hosts a
// full *Table holding exactly the entries it owns. Each shard preserves the
// complete Table contract — CommitGuard, WaitReady parking, push
// subscriptions, forwarding chains, AbortPending — so the protocols built
// on the centralized table run unchanged against a shard.
//
// Membership changes (AddMember / RemoveMember) hand keys off by moving
// whole entries between shards under the directory's exclusive lock:
// parked waiters, subscriber sets, and forwarding chains travel with the
// entry, so a future created before a handoff resolves after it with no
// protocol-visible seam. Ops hold the shared lock only long enough to
// route and run the shard call (WaitReady parks outside it), so routing
// can never observe a half-finished handoff.
type ShardedTable struct {
	mu       sync.RWMutex
	ring     *Ring
	shards   map[idgen.NodeID]*Table
	guard    CommitGuard
	handoffs uint64
	// orphans holds entries stranded by removal of the last member; the
	// next AddMember adopts them. The runtime keeps the head node a
	// permanent member, so this is a safety net, not a steady state.
	orphans map[idgen.ObjectID]*entry

	// repl maps each primary to the replica of its shard, hosted at its
	// ring successor (sharded_repl.go). Map mutations happen under mu
	// (write); op-path reads hold mu in some mode.
	repl            map[idgen.NodeID]*replState
	replAppended    atomic.Uint64
	replApplied     atomic.Uint64
	promotions      uint64
	restoredEntries uint64
	lostEntries     uint64
}

// NewSharded returns an empty sharded directory with the given virtual-node
// count per member (DefaultVNodes if vnodes <= 0).
func NewSharded(vnodes int) *ShardedTable {
	return &ShardedTable{
		ring:   NewRing(vnodes),
		shards: make(map[idgen.NodeID]*Table),
		repl:   make(map[idgen.NodeID]*replState),
	}
}

// AddMember adds a node as a shard host and rebalances: every entry whose
// key now hashes to the new member moves to its shard. Returns the number
// of entries handed off. Idempotent.
func (s *ShardedTable) AddMember(n idgen.NodeID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ring.Add(n) {
		return 0
	}
	t := s.shards[n]
	if t == nil {
		t = NewTable()
		t.SetCommitGuard(s.guard)
		t.setOpLog(func(op repOp) { s.appendRep(n, op) })
		s.shards[n] = t
	}
	moved := 0
	touched := map[idgen.NodeID]bool{n: true}
	// Only keys that now land on the new member move; every other arc is
	// untouched — the consistent-hashing property that bounds handoff.
	for host, shard := range s.shards {
		if host == n {
			continue
		}
		taken := shard.takeMisplaced(func(id idgen.ObjectID) bool {
			owner, _ := s.ring.OwnerOf(id)
			return owner == host
		})
		if len(taken) > 0 {
			touched[host] = true
		}
		moved += len(taken)
		t.adopt(taken)
	}
	if len(s.orphans) > 0 {
		orphans := s.orphans
		s.orphans = nil
		moved += len(orphans)
		// Orphans may now belong to any member, not just the new one.
		byOwner := make(map[idgen.NodeID]map[idgen.ObjectID]*entry)
		for id, e := range orphans {
			owner, _ := s.ring.OwnerOf(id)
			m := byOwner[owner]
			if m == nil {
				m = make(map[idgen.ObjectID]*entry)
				byOwner[owner] = m
			}
			m[id] = e
		}
		for owner, m := range byOwner {
			s.shards[owner].adopt(m)
			touched[owner] = true
		}
	}
	s.handoffs += uint64(moved)
	s.syncReplicasLocked(touched)
	return moved
}

// RemoveMember drops a shard host and hands its entries to the surviving
// owners. Returns the number of entries handed off. Idempotent. The node's
// *data-plane* copies are a separate concern: callers still run
// RemoveNodeLocations to purge locations on the failed node.
func (s *ShardedTable) RemoveMember(n idgen.NodeID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ring.Remove(n) {
		return 0
	}
	shard := s.shards[n]
	delete(s.shards, n)
	delete(s.repl, n)
	if shard == nil {
		s.syncReplicasLocked(nil)
		return 0
	}
	taken := shard.takeAll()
	moved := len(taken)
	if s.ring.Len() == 0 {
		if moved > 0 {
			if s.orphans == nil {
				s.orphans = make(map[idgen.ObjectID]*entry)
			}
			for id, e := range taken {
				s.orphans[id] = e
			}
		}
		s.handoffs += uint64(moved)
		s.syncReplicasLocked(nil)
		return moved
	}
	touched := make(map[idgen.NodeID]bool)
	byOwner := make(map[idgen.NodeID]map[idgen.ObjectID]*entry)
	for id, e := range taken {
		owner, _ := s.ring.OwnerOf(id)
		m := byOwner[owner]
		if m == nil {
			m = make(map[idgen.ObjectID]*entry)
			byOwner[owner] = m
		}
		m[id] = e
	}
	for owner, m := range byOwner {
		s.shards[owner].adopt(m)
		touched[owner] = true
	}
	s.handoffs += uint64(moved)
	s.syncReplicasLocked(touched)
	return moved
}

// OwnerOf returns the ring member owning id's key — the node a raylet
// should address own.* RPCs for id to. False on an empty ring.
func (s *ShardedTable) OwnerOf(id idgen.ObjectID) (idgen.NodeID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.OwnerOf(id)
}

// Members returns the shard hosts, sorted.
func (s *ShardedTable) Members() []idgen.NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.Members()
}

// Handoffs returns the cumulative count of entries moved between shards.
func (s *ShardedTable) Handoffs() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.handoffs
}

// ShardSizes returns the entry count per shard host (the `skadi -trace`
// per-shard directory view).
func (s *ShardedTable) ShardSizes() map[idgen.NodeID]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[idgen.NodeID]int, len(s.shards))
	for host, shard := range s.shards {
		out[host] = shard.Len()
	}
	return out
}

// Version returns the ring's membership version.
func (s *ShardedTable) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.Version()
}

// shardFor routes id to its owning shard. Caller holds s.mu (read or
// write).
func (s *ShardedTable) shardFor(id idgen.ObjectID) (*Table, error) {
	owner, ok := s.ring.OwnerOf(id)
	if !ok {
		return nil, errNoShards()
	}
	t := s.shards[owner]
	if t == nil {
		// Ring and shard map are mutated together under the write lock;
		// divergence is a bug, not a runtime condition.
		return nil, skaderr.Mark(skaderr.Internal,
			fmt.Errorf("ownership: ring member %s has no shard", owner.Short()))
	}
	return t, nil
}

// --- Directory implementation -------------------------------------------

// SetCommitGuard installs the guard on every current shard and remembers it
// for shards created by later AddMember calls.
func (s *ShardedTable) SetCommitGuard(g CommitGuard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.guard = g
	for _, shard := range s.shards {
		shard.SetCommitGuard(g)
	}
}

// CreatePending registers a new object on its owning shard.
func (s *ShardedTable) CreatePending(id idgen.ObjectID, owner idgen.NodeID, task idgen.TaskID) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.shardFor(id)
	if err != nil {
		return err
	}
	return t.CreatePending(id, owner, task)
}

// MarkReady commits the object on its owning shard.
func (s *ShardedTable) MarkReady(id idgen.ObjectID, size int64, location idgen.NodeID, deviceID idgen.NodeID, deviceHandle string) ([]idgen.NodeID, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.shardFor(id)
	if err != nil {
		return nil, err
	}
	return t.MarkReady(id, size, location, deviceID, deviceHandle)
}

// AddLocation records an additional copy on the owning shard.
func (s *ShardedTable) AddLocation(id idgen.ObjectID, node idgen.NodeID) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.shardFor(id)
	if err != nil {
		return err
	}
	return t.AddLocation(id, node)
}

// MoveLocation retargets a copy on the owning shard.
func (s *ShardedTable) MoveLocation(id idgen.ObjectID, from, to idgen.NodeID) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.shardFor(id)
	if err != nil {
		return err
	}
	return t.MoveLocation(id, from, to)
}

// ResolveForward chases a forwarding chain on the owning shard.
func (s *ShardedTable) ResolveForward(id idgen.ObjectID, stale idgen.NodeID) (idgen.NodeID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.shardFor(id)
	if err != nil {
		return idgen.Nil, false
	}
	return t.ResolveForward(id, stale)
}

// Subscribe registers a push subscription on the owning shard.
func (s *ShardedTable) Subscribe(id idgen.ObjectID, node idgen.NodeID) (bool, Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.shardFor(id)
	if err != nil {
		return false, Record{}, err
	}
	return t.Subscribe(id, node)
}

// Get returns the record from the owning shard.
func (s *ShardedTable) Get(id idgen.ObjectID) (Record, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.shardFor(id)
	if err != nil {
		return Record{}, err
	}
	return t.Get(id)
}

// Records snapshots every shard, merged and sorted by ID — same semantics
// as Table.Records, so the chaos invariant checkers run unchanged.
func (s *ShardedTable) Records() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Record
	for _, shard := range s.shards {
		out = append(out, shard.Records()...)
	}
	for id, e := range s.orphans {
		rec := e.rec
		rec.Locations = append([]idgen.NodeID(nil), rec.Locations...)
		rec.ID = id
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.Less(out[j].ID) })
	return out
}

// WaitReady blocks until the object is Ready or Lost. The waiter registers
// under the routing lock (so it cannot race a handoff) but parks outside
// it; if the entry migrates while parked, the waiter channel migrates with
// it and the release arrives from the new shard.
func (s *ShardedTable) WaitReady(ctx context.Context, id idgen.ObjectID) error {
	s.mu.RLock()
	t, err := s.shardFor(id)
	if err != nil {
		s.mu.RUnlock()
		return err
	}
	ch, err := t.waitChan(id)
	s.mu.RUnlock()
	if err != nil || ch == nil {
		return err
	}
	return awaitState(ctx, id, ch)
}

// PendingIDs merges the still-Pending IDs across shards, sorted.
func (s *ShardedTable) PendingIDs() []idgen.ObjectID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []idgen.ObjectID
	for _, shard := range s.shards {
		out = append(out, shard.PendingIDs()...)
	}
	for id, e := range s.orphans {
		if e.rec.State == Pending {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// AbortPending aborts still-Pending objects on every shard, sorted. Takes
// the write lock: it may mutate orphaned entries directly.
func (s *ShardedTable) AbortPending() []idgen.ObjectID {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []idgen.ObjectID
	for _, shard := range s.shards {
		out = append(out, shard.AbortPending()...)
	}
	for id, e := range s.orphans {
		if e.rec.State != Pending {
			continue
		}
		e.rec.State = Lost
		out = append(out, id)
		for _, w := range e.waiters {
			w <- Lost
		}
		e.waiters = nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// RemoveNodeLocations purges a failed node's copies across every shard and
// returns the objects that lost their last copy, sorted.
func (s *ShardedTable) RemoveNodeLocations(node idgen.NodeID) []idgen.ObjectID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []idgen.ObjectID
	for _, shard := range s.shards {
		out = append(out, shard.RemoveNodeLocations(node)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// MarkLost forces an object Lost on its owning shard.
func (s *ShardedTable) MarkLost(id idgen.ObjectID) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.shardFor(id)
	if err != nil {
		return err
	}
	return t.MarkLost(id)
}

// Reset returns an object to Pending on its owning shard.
func (s *ShardedTable) Reset(id idgen.ObjectID) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.shardFor(id)
	if err != nil {
		return err
	}
	return t.Reset(id)
}

// Delete removes an object's entry from its owning shard.
func (s *ShardedTable) Delete(id idgen.ObjectID) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, err := s.shardFor(id)
	if err != nil {
		return
	}
	t.Delete(id)
}

// Len returns the total entry count across shards.
func (s *ShardedTable) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.orphans)
	for _, shard := range s.shards {
		n += shard.Len()
	}
	return n
}
