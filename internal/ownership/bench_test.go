package ownership

import (
	"testing"

	"skadi/internal/idgen"
)

// benchTable returns a table preloaded with n Ready entries and the ID set.
func benchTable(b *testing.B, n int) (*Table, []idgen.ObjectID) {
	b.Helper()
	tbl := NewTable()
	owner, task, loc := idgen.Next(), idgen.Next(), idgen.Next()
	ids := make([]idgen.ObjectID, n)
	for i := range ids {
		ids[i] = idgen.Next()
		if err := tbl.CreatePending(ids[i], owner, task); err != nil {
			b.Fatal(err)
		}
		if _, err := tbl.MarkReady(ids[i], 64, loc, idgen.Nil, ""); err != nil {
			b.Fatal(err)
		}
	}
	return tbl, ids
}

func BenchmarkGet(b *testing.B) {
	tbl, ids := benchTable(b, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Get(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarkReady(b *testing.B) {
	tbl, ids := benchTable(b, 4096)
	loc := idgen.Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.MarkReady(ids[i%len(ids)], 64, loc, idgen.Nil, ""); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAddLocation(b *testing.B) {
	tbl, ids := benchTable(b, 4096)
	loc := idgen.Next()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.AddLocation(ids[i%len(ids)], loc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedGet measures routing + shard cost so E20's per-shard
// directory attribution has a microbenchmark anchor.
func BenchmarkShardedGet(b *testing.B) {
	s, _ := newShardedWith(8)
	owner, task, loc := idgen.Next(), idgen.Next(), idgen.Next()
	ids := make([]idgen.ObjectID, 4096)
	for i := range ids {
		ids[i] = idgen.Next()
		if err := s.CreatePending(ids[i], owner, task); err != nil {
			b.Fatal(err)
		}
		if _, err := s.MarkReady(ids[i], 64, loc, idgen.Nil, ""); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPendingIDs(b *testing.B) {
	tbl := NewTable()
	owner, task := idgen.Next(), idgen.Next()
	for i := 0; i < 4096; i++ {
		if err := tbl.CreatePending(idgen.Next(), owner, task); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tbl.PendingIDs(); len(got) != 4096 {
			b.Fatal("bad length")
		}
	}
}
