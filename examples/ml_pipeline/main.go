// ML pipeline: distributed MLP inference (layers as hardware-agnostic IR
// vertices, lowered onto GPUs) and synchronous data-parallel SGD training
// with gang-scheduled SPMD gradient stages — the MPMD/SPMD patterns of
// §2.3.
//
// Run with: go run ./examples/ml_pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"skadi/internal/core"
	"skadi/internal/frontend/mlfe"
	"skadi/internal/ir"
	"skadi/internal/runtime"
)

func main() {
	s, err := core.New(core.ClusterSpec{
		Servers: 4, ServerSlots: 4, ServerMemBytes: 256 << 20,
		GPUs: 4, DeviceSlots: 2, DeviceMemBytes: 128 << 20,
	}, core.Options{DeviceMode: runtime.Gen2})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	// --- Inference: a 3-layer MLP as a FlowGraph of IR vertices. ---
	mlp, err := mlfe.NewMLP("classifier", []int{8, 16, 16, 4}, 2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("forward graph (one IR vertex per layer):")
	fmt.Print(mlp.ForwardGraph().String())

	batch := ir.NewTensor(32, 8)
	for i := range batch.Data {
		batch.Data[i] = math.Sin(float64(i) / 5)
	}
	local, err := mlp.Forward(batch) // reference result, computed locally
	if err != nil {
		log.Fatal(err)
	}
	distributed, err := s.Predict(ctx, mlp, batch) // same layers, on GPUs
	if err != nil {
		log.Fatal(err)
	}
	maxDiff := 0.0
	for i := range local.Data {
		if d := math.Abs(local.Data[i] - distributed.Data[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("inference: %d outputs, max |local - distributed| = %g\n\n",
		distributed.Elems(), maxDiff)

	// --- Training: data-parallel SGD with gang-scheduled epochs. ---
	const n, d = 512, 4
	x := ir.NewTensor(n, d)
	y := ir.NewTensor(n, 1)
	trueW := []float64{1.5, -2.0, 0.75, 3.0}
	seed := uint64(99)
	next := func() float64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return float64(seed%1000)/500 - 1
	}
	for r := 0; r < n; r++ {
		dot := 0.0
		for c := 0; c < d; c++ {
			v := next()
			x.Set(r, c, v)
			dot += v * trueW[c]
		}
		y.Data[r] = dot
	}
	w, hist, err := s.TrainLinear(ctx, &mlfe.SGDTrainer{
		LearningRate: 0.15, Epochs: 80, Shards: 4, Gang: true,
	}, x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training (4 gang-scheduled gradient shards per epoch):")
	fmt.Printf("  loss: %.4f -> %.8f\n", hist[0], hist[len(hist)-1])
	for i := range trueW {
		fmt.Printf("  w[%d] = %+.4f (true %+.4f)\n", i, w.Data[i], trueW[i])
	}
}
