// Streaming: micro-batch stream processing with tumbling windows whose
// state lives in stateful-serverless actors — the execution model
// commercial FaaS cannot host because its functions are stateless (§1).
//
// A synthetic stream of service-latency events flows through a map stage
// (filtering and re-keying), is hash-routed to window actors, and every
// 3 micro-batches each service's p-like max latency is emitted.
//
// Run with: go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"

	"skadi/internal/core"
	"skadi/internal/frontend/streamfe"
)

func main() {
	s, err := core.New(core.ClusterSpec{
		Servers: 4, ServerSlots: 4, ServerMemBytes: 128 << 20,
	}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	// Synthetic stream: 9 micro-batches of latency samples per service.
	services := []string{"api", "db", "cache"}
	seed := uint64(77)
	next := func(mod int) int {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return int(seed % uint64(mod))
	}
	var stream [][]streamfe.Record
	for batch := 0; batch < 9; batch++ {
		var records []streamfe.Record
		for i := 0; i < 50; i++ {
			svc := services[next(3)]
			latency := float64(5 + next(95))
			if svc == "db" && batch >= 6 {
				latency += 200 // the db degrades in the last window
			}
			records = append(records, streamfe.Record{Key: svc, Value: latency})
		}
		stream = append(stream, records)
	}

	pipeline := &streamfe.Pipeline{
		Name:        "latency-monitor",
		Parallelism: 3,
		Window:      3, // tumbling window of 3 micro-batches
		Map: func(r streamfe.Record) []streamfe.Record {
			if r.Value < 10 {
				return nil // drop noise below 10ms
			}
			return []streamfe.Record{r}
		},
		Reduce: func(_ string, values []float64) float64 {
			max := 0.0
			for _, v := range values {
				if v > max {
					max = v
				}
			}
			return max
		},
	}

	outputs, err := s.Stream(ctx, pipeline, stream)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-window max latency (ms):")
	current := -1
	for _, o := range outputs {
		if o.Window != current {
			current = o.Window
			fmt.Printf("window %d:\n", current)
		}
		flag := ""
		if o.Value > 150 {
			flag = "  << degradation detected"
		}
		fmt.Printf("  %-6s %6.0f%s\n", o.Key, o.Value, flag)
	}
}
