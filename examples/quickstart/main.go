// Quickstart: the distributed task API in one file.
//
// Boot a simulated disaggregated cluster, register a function, submit
// tasks that exchange futures, use a stateful actor, and read results —
// without naming a single node: the runtime hides data location and
// placement (§1's separation of concerns).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"

	"skadi/internal/core"
	"skadi/internal/task"
)

func main() {
	s, err := core.New(core.ClusterSpec{
		Servers: 3, ServerSlots: 4, ServerMemBytes: 128 << 20,
	}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	rt := s.Runtime()

	// 1. Register functions. The registry is shared by every node — the
	// moral equivalent of shipping your code to the cluster.
	s.Register("square", func(_ *task.Context, args [][]byte) ([][]byte, error) {
		n, err := strconv.Atoi(string(args[0]))
		if err != nil {
			return nil, err
		}
		return [][]byte{[]byte(strconv.Itoa(n * n))}, nil
	})
	s.Register("sum", func(_ *task.Context, args [][]byte) ([][]byte, error) {
		total := 0
		for _, a := range args {
			n, err := strconv.Atoi(string(a))
			if err != nil {
				return nil, err
			}
			total += n
		}
		return [][]byte{[]byte(strconv.Itoa(total))}, nil
	})

	// 2. Fan out tasks; each Submit returns future references immediately.
	var squares []task.Arg
	for i := 1; i <= 10; i++ {
		spec := task.NewSpec(rt.Job(), "square", []task.Arg{task.ValueArg([]byte(strconv.Itoa(i)))}, 1)
		refs := s.Submit(spec)
		squares = append(squares, task.RefArg(refs[0]))
	}

	// 3. Fan in: the reducer consumes the futures; the runtime resolves
	// them wherever they were produced.
	reduce := task.NewSpec(rt.Job(), "sum", squares, 1)
	result := s.Submit(reduce)[0]
	data, err := s.Get(ctx, result)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sum of squares 1..10 = %s (want 385)\n", data)

	// 4. Stateful actor: state survives across calls on its pinned node.
	s.Register("tally", func(tctx *task.Context, args [][]byte) ([][]byte, error) {
		n, _ := strconv.Atoi(string(tctx.ActorState["n"]))
		v, err := strconv.Atoi(string(args[0]))
		if err != nil {
			return nil, err
		}
		n += v
		tctx.ActorState["n"] = []byte(strconv.Itoa(n))
		return [][]byte{[]byte(strconv.Itoa(n))}, nil
	})
	actor, err := rt.CreateActor("cpu")
	if err != nil {
		log.Fatal(err)
	}
	var last []byte
	for _, v := range []string{"5", "10", "20"} {
		spec := task.NewSpec(rt.Job(), "tally", []task.Arg{task.ValueArg([]byte(v))}, 1)
		spec.Actor = actor
		ref := s.Submit(spec)[0]
		if last, err = s.Get(ctx, ref); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("actor tally after 5+10+20 = %s (want 35)\n", last)

	stats := rt.FabricStats()
	fmt.Printf("moved %d bytes in %d messages without naming a node\n", stats.Bytes, stats.Messages)
}
