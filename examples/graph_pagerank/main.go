// Graph processing: PageRank and shortest paths over a synthetic web
// graph, expressed as Pregel-style vertex programs and executed as
// keyed-shuffle FlowGraphs per superstep.
//
// Run with: go run ./examples/graph_pagerank
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"skadi/internal/core"
	"skadi/internal/frontend/graphfe"
)

func main() {
	s, err := core.New(core.ClusterSpec{
		Servers: 4, ServerSlots: 4, ServerMemBytes: 256 << 20,
	}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	s.Parallelism = 4
	ctx := context.Background()

	// A scale-free-ish graph: early vertices attract more links.
	var edges []graphfe.Edge
	const vertices = 200
	seed := uint64(7)
	next := func(mod int64) int64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return int64(seed % uint64(mod))
	}
	for v := int64(1); v < vertices; v++ {
		outDeg := 1 + next(4)
		for e := int64(0); e < outDeg; e++ {
			dst := next(v) // preferential: earlier vertices more likely
			if dst == v {
				continue
			}
			edges = append(edges, graphfe.Edge{Src: v, Dst: dst})
			if e%3 == 0 {
				// Some links are reciprocated, keeping the graph explorable.
				edges = append(edges, graphfe.Edge{Src: dst, Dst: v})
			}
		}
	}
	fmt.Printf("graph: %d vertices, %d edges\n\n", vertices, len(edges))

	ranks, err := s.PageRank(ctx, edges, 25, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	type vr struct {
		id   int64
		rank float64
	}
	var sorted []vr
	total := 0.0
	for id, r := range ranks {
		sorted = append(sorted, vr{id, r})
		total += r
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].rank > sorted[j].rank })
	fmt.Println("top 5 by pagerank:")
	for _, v := range sorted[:5] {
		fmt.Printf("  vertex %3d: %.5f\n", v.id, v.rank)
	}
	fmt.Printf("rank mass: %.6f (should be ~1)\n\n", total)

	// Shortest paths from the highest-ranked vertex that has out-edges.
	outDeg := map[int64]int{}
	for _, e := range edges {
		outDeg[e.Src]++
	}
	source := sorted[0].id
	for _, v := range sorted {
		if outDeg[v.id] > 0 {
			source = v.id
			break
		}
	}
	dist, err := s.SSSP(ctx, edges, source)
	if err != nil {
		log.Fatal(err)
	}
	reachable := 0
	maxDist := 0.0
	for _, d := range dist {
		if d < 1e18 {
			reachable++
			if d > maxDist {
				maxDist = d
			}
		}
	}
	fmt.Printf("sssp from vertex %d: %d/%d reachable, eccentricity %d\n",
		source, reachable, len(dist), int(maxDist))
}
