// Integrated pipeline: the paper's motivating trend (§1) — ingestion,
// SQL analytics, and ML training in ONE job on ONE runtime, exchanging
// intermediate data through the caching layer rather than durable storage,
// and surviving a node failure mid-pipeline via lineage.
//
// Run with: go run ./examples/integrated_pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"strconv"
	"strings"

	"skadi/internal/arrowlite"
	"skadi/internal/core"
	"skadi/internal/frontend/mlfe"
	"skadi/internal/frontend/mrfe"
	"skadi/internal/ir"
	"skadi/internal/runtime"
)

func main() {
	s, err := core.New(core.ClusterSpec{
		Servers: 5, ServerSlots: 4, ServerMemBytes: 256 << 20,
		GPUs: 2, DeviceSlots: 2, DeviceMemBytes: 64 << 20,
		MemBladeBytes: 512 << 20,
	}, core.Options{Recovery: runtime.RecoverLineage})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	// --- Stage 1: ingestion (MapReduce over raw logs). ---
	// Raw access logs → (region, response_ms) records.
	var logs [][]byte
	regions := []string{"east", "west", "north", "south"}
	seed := uint64(5)
	next := func(mod int) int {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return int(seed % uint64(mod))
	}
	for i := 0; i < 2000; i++ {
		region := regions[next(4)]
		ms := 20 + next(200)
		logs = append(logs, []byte(fmt.Sprintf("GET /api %s %dms", region, ms)))
	}
	ingest := &mrfe.Job{
		Name: "ingest",
		Map: func(rec []byte) []mrfe.KV {
			parts := strings.Fields(string(rec))
			return []mrfe.KV{{Key: parts[2], Value: []byte(strings.TrimSuffix(parts[3], "ms"))}}
		},
		Reduce: func(key string, values [][]byte) []byte {
			// Emit "count,total" per region.
			total := 0
			for _, v := range values {
				n, _ := strconv.Atoi(string(v))
				total += n
			}
			return []byte(fmt.Sprintf("%d,%d", len(values), total))
		},
	}
	perRegion, err := s.MapReduce(ctx, ingest, logs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("stage 1 (ingest): per-region request stats")
	b := arrowlite.NewBuilder(arrowlite.NewSchema(
		arrowlite.Field{Name: "region", Type: arrowlite.Bytes},
		arrowlite.Field{Name: "requests", Type: arrowlite.Int64},
		arrowlite.Field{Name: "total_ms", Type: arrowlite.Float64},
	))
	for _, kv := range perRegion {
		count, total, _ := strings.Cut(string(kv.Value), ",")
		c, _ := strconv.ParseInt(count, 10, 64)
		tms, _ := strconv.ParseFloat(total, 64)
		fmt.Printf("  %-6s requests=%-4d total=%.0fms\n", kv.Key, c, tms)
		if err := b.Append(kv.Key, c, tms); err != nil {
			log.Fatal(err)
		}
	}

	// --- Stage 2: SQL over the ingested table. ---
	stats, err := s.SQL(ctx,
		"SELECT region, SUM(total_ms), SUM(requests) FROM traffic GROUP BY region ORDER BY sum_total_ms DESC",
		map[string]*arrowlite.Batch{"traffic": b.Build()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstage 2 (sql): load ranking")
	for r := 0; r < stats.NumRows(); r++ {
		fmt.Printf("  %-6s total=%.0fms requests=%.0f\n",
			stats.ColByName("region").BytesAt(r),
			stats.ColByName("sum_total_ms").Floats[r],
			stats.ColByName("sum_requests").Floats[r])
	}

	// --- Failure injection: kill a worker mid-pipeline. ---
	victim := s.Runtime().Raylets()[1].Node()
	lost := s.Runtime().KillNode(victim)
	fmt.Printf("\n!! killed a worker node mid-pipeline (%d objects needed lineage recovery)\n", len(lost))

	// --- Stage 3: ML on the SQL output. ---
	// Learn mean latency per request: total_ms ≈ w * requests.
	n := stats.NumRows()
	x, y := ir.NewTensor(n, 1), ir.NewTensor(n, 1)
	for r := 0; r < n; r++ {
		x.Data[r] = stats.ColByName("sum_requests").Floats[r] / 100
		y.Data[r] = stats.ColByName("sum_total_ms").Floats[r] / 100
	}
	w, hist, err := s.TrainLinear(ctx, &mlfe.SGDTrainer{LearningRate: 0.02, Epochs: 120}, x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstage 3 (ml): fitted mean latency = %.1f ms/request (loss %.3f -> %.5f)\n",
		w.Data[0], hist[0], hist[len(hist)-1])

	fstats := s.Runtime().FabricStats()
	fmt.Printf("\none job, three data systems, zero durable-storage bounces: %.2f MiB over the fabric\n",
		float64(fstats.Bytes)/(1<<20))
}
