// SQL analytics: a small star schema queried through the full lowering
// pipeline — SQL text → logical FlowGraph → optimized → physical sharded
// graph → distributed tasks on a heterogeneous cluster.
//
// Run with: go run ./examples/sql_analytics
package main

import (
	"context"
	"fmt"
	"log"

	"skadi/internal/arrowlite"
	"skadi/internal/core"
)

func main() {
	s, err := core.New(core.ClusterSpec{
		Servers: 4, ServerSlots: 4, ServerMemBytes: 256 << 20,
		FPGAs: 2, DeviceSlots: 2, DeviceMemBytes: 64 << 20,
	}, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	s.Parallelism = 4
	ctx := context.Background()

	tables := map[string]*arrowlite.Batch{
		"sales": salesFact(10_000),
		"items": itemsDim(),
	}

	queries := []string{
		"SELECT COUNT(*), SUM(amount), AVG(amount) FROM sales",
		"SELECT region, SUM(amount), COUNT(*) FROM sales WHERE amount > 50 GROUP BY region ORDER BY sum_amount DESC",
		"SELECT category, SUM(amount) FROM sales JOIN items ON item = id GROUP BY category ORDER BY sum_amount DESC LIMIT 3",
		"SELECT amount FROM sales WHERE region = 'east' ORDER BY amount DESC LIMIT 5",
	}
	for _, q := range queries {
		fmt.Println("sql>", q)
		result, err := s.SQL(ctx, q, tables)
		if err != nil {
			log.Fatal(err)
		}
		printResult(result)
		fmt.Println()
	}

	stats := s.Runtime().FabricStats()
	fmt.Printf("total: %.2f MiB shuffled across the fabric, %d messages\n",
		float64(stats.Bytes)/(1<<20), stats.Messages)
}

// salesFact generates a deterministic fact table.
func salesFact(rows int) *arrowlite.Batch {
	b := arrowlite.NewBuilder(arrowlite.NewSchema(
		arrowlite.Field{Name: "region", Type: arrowlite.Bytes},
		arrowlite.Field{Name: "item", Type: arrowlite.Int64},
		arrowlite.Field{Name: "amount", Type: arrowlite.Float64},
	))
	regions := []string{"east", "west", "north", "south"}
	for i := 0; i < rows; i++ {
		_ = b.Append(regions[(i*7)%4], int64(i%12), float64((i*31)%100))
	}
	return b.Build()
}

// itemsDim generates the dimension table.
func itemsDim() *arrowlite.Batch {
	b := arrowlite.NewBuilder(arrowlite.NewSchema(
		arrowlite.Field{Name: "id", Type: arrowlite.Int64},
		arrowlite.Field{Name: "category", Type: arrowlite.Bytes},
	))
	categories := []string{"tools", "toys", "food"}
	for i := 0; i < 12; i++ {
		_ = b.Append(int64(i), categories[i%3])
	}
	return b.Build()
}

func printResult(batch *arrowlite.Batch) {
	for c, f := range batch.Schema.Fields {
		if c > 0 {
			fmt.Print("  ")
		}
		fmt.Print(f.Name)
	}
	fmt.Println()
	for r := 0; r < batch.NumRows() && r < 10; r++ {
		for c := range batch.Schema.Fields {
			if c > 0 {
				fmt.Print("  ")
			}
			col := batch.Col(c)
			switch col.Type {
			case arrowlite.Int64:
				fmt.Print(col.Ints[r])
			case arrowlite.Float64:
				fmt.Printf("%.1f", col.Floats[r])
			default:
				fmt.Print(string(col.BytesAt(r)))
			}
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", batch.NumRows())
}
